#pragma once

#include <array>
#include <cstdint>

namespace hprng::prng {

/// Philox4x32-10 counter-based generator (Salmon et al., SC'11).
/// Included as the "future work" style extension: a modern counter-based
/// design that, like the paper's hybrid PRNG, supports on-demand per-thread
/// streams without shared state.
struct Philox4x32 {
  static constexpr const char* kName = "philox4x32-10";
  static constexpr std::uint32_t kM0 = 0xD2511F53u;
  static constexpr std::uint32_t kM1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kW0 = 0x9E3779B9u;
  static constexpr std::uint32_t kW1 = 0xBB67AE85u;

  explicit Philox4x32(std::uint64_t seed)
      : key{static_cast<std::uint32_t>(seed),
            static_cast<std::uint32_t>(seed >> 32)},
        counter{0, 0, 0, 0} {}

  /// Evaluate the 10-round bijection for an explicit counter (pure function;
  /// this is what makes the generator trivially parallel).
  static std::array<std::uint32_t, 4> block(std::array<std::uint32_t, 4> ctr,
                                            std::array<std::uint32_t, 2> k) {
    for (int round = 0; round < 10; ++round) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kM0) * ctr[0];
      const std::uint64_t p1 = static_cast<std::uint64_t>(kM1) * ctr[2];
      const std::uint32_t hi0 = static_cast<std::uint32_t>(p0 >> 32);
      const std::uint32_t lo0 = static_cast<std::uint32_t>(p0);
      const std::uint32_t hi1 = static_cast<std::uint32_t>(p1 >> 32);
      const std::uint32_t lo1 = static_cast<std::uint32_t>(p1);
      ctr = {hi1 ^ ctr[1] ^ k[0], lo1, hi0 ^ ctr[3] ^ k[1], lo0};
      k[0] += kW0;
      k[1] += kW1;
    }
    return ctr;
  }

  std::uint32_t next_u32() {
    if (lane == 0) {
      out = block(counter, key);
      // 128-bit counter increment.
      if (++counter[0] == 0 && ++counter[1] == 0 && ++counter[2] == 0) {
        ++counter[3];
      }
    }
    const std::uint32_t v = out[lane];
    lane = (lane + 1) & 3;
    return v;
  }

  std::uint64_t next_u64() {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  /// O(1) jump-ahead over n u32 draws — counter arithmetic, no block
  /// evaluations beyond at most one for a mid-block landing. Equivalent to
  /// n next_u32() calls; detected by prng::Adapter as the cheap_jump hook.
  void discard_u32(std::uint64_t n) {
    if (lane != 0) {
      const std::uint64_t left = static_cast<std::uint64_t>(4 - lane);
      if (n < left) {
        lane += static_cast<int>(n);
        return;
      }
      n -= left;
      lane = 0;
    }
    add_counter(n >> 2);
    const int rem = static_cast<int>(n & 3);
    if (rem != 0) {
      out = block(counter, key);
      add_counter(1);
      lane = rem;
    }
  }

  std::array<std::uint32_t, 2> key;
  std::array<std::uint32_t, 4> counter;
  std::array<std::uint32_t, 4> out{};
  int lane = 0;

 private:
  /// 128-bit counter += n.
  void add_counter(std::uint64_t n) {
    std::uint64_t lo = (static_cast<std::uint64_t>(counter[1]) << 32) |
                       counter[0];
    std::uint64_t hi = (static_cast<std::uint64_t>(counter[3]) << 32) |
                       counter[2];
    lo += n;
    if (lo < n) ++hi;
    counter = {static_cast<std::uint32_t>(lo),
               static_cast<std::uint32_t>(lo >> 32),
               static_cast<std::uint32_t>(hi),
               static_cast<std::uint32_t>(hi >> 32)};
  }
};

}  // namespace hprng::prng
