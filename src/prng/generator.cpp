#include "prng/generator.hpp"

#include "util/check.hpp"

namespace hprng::prng {

std::uint64_t Generator::next_below(std::uint64_t bound) {
  HPRNG_CHECK(bound > 0, "next_below bound must be positive");
  // Rejection from the largest multiple of bound below 2^64 (unbiased).
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % bound;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

}  // namespace hprng::prng
