#pragma once

#include <cstdint>

namespace hprng::prng {

/// Multiply-with-carry generator (Marsaglia), the per-thread RNG of the
/// CUDAMCML photon-migration code of Alerstam et al. [1] that the paper's
/// "Original" baseline uses (Fig. 8):
///   x = a * (x & 0xffffffff) + (x >> 32)
/// where `a` is a safeprime-derived multiplier chosen per thread.
struct Mwc {
  static constexpr const char* kName = "mwc";

  /// A known good MWC multiplier (a * 2^32 - 1 and a * 2^31 - 1 are prime).
  static constexpr std::uint32_t kDefaultMultiplier = 4294967118u;

  explicit Mwc(std::uint64_t seed, std::uint32_t multiplier = kDefaultMultiplier)
      : state(seed), a(multiplier) {
    // Avoid the fixed points x = 0 and x = a * 2^32 - 1.
    if (state == 0 ||
        state == (static_cast<std::uint64_t>(a) << 32) - 1) {
      state = 0x853C49E6748FEA9Bull;
    }
  }

  std::uint32_t next_u32() {
    state = static_cast<std::uint64_t>(a) * (state & 0xFFFFFFFFull) +
            (state >> 32);
    return static_cast<std::uint32_t>(state);
  }

  std::uint64_t state;
  std::uint32_t a;
};

}  // namespace hprng::prng
