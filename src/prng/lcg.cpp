#include "prng/lcg.hpp"

namespace hprng::prng {

GlibcRandom::GlibcRandom(std::uint64_t seed) : r{}, f(0), rr(0) {
  // glibc srandom_r initialisation for TYPE_3 (DEG_3 = 31, SEP_3 = 3):
  // fill the 31-word table with a Park-Miller LCG (Schrage's trick, exactly
  // as glibc does to avoid 32-bit overflow), then discard 10 * 31 outputs.
  std::int32_t s = static_cast<std::int32_t>(seed);
  if (s == 0) s = 1;
  r[0] = static_cast<std::uint32_t>(s);
  for (int i = 1; i < 31; ++i) {
    const std::int64_t hi = static_cast<std::int32_t>(r[i - 1]) / 127773;
    const std::int64_t lo = static_cast<std::int32_t>(r[i - 1]) % 127773;
    std::int64_t word = 16807 * lo - 2836 * hi;
    if (word < 0) word += 2147483647;
    r[i] = static_cast<std::uint32_t>(word);
  }
  f = 3;   // fptr = &state[SEP_3]
  rr = 0;  // rptr = &state[0]
  for (int i = 0; i < 310; ++i) (void)next_31();
}

std::uint32_t GlibcRandom::next_31() {
  // r[i] = r[i-3] + r[i-31] (mod 2^32); output drops the low bit.
  r[static_cast<std::size_t>(f)] += r[static_cast<std::size_t>(rr)];
  const std::uint32_t out = (r[static_cast<std::size_t>(f)] >> 1) & 0x7FFFFFFFu;
  f = (f + 1) % 31;
  rr = (rr + 1) % 31;
  return out;
}

}  // namespace hprng::prng
