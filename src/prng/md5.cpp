#include "prng/md5.hpp"

#include <bit>
#include <cstring>
#include <vector>

namespace hprng::prng {
namespace {

// Per-round shift amounts (RFC 1321).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|) (RFC 1321 table).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

Md5::Digest compress(Md5::Digest h, const std::array<std::uint32_t, 16>& m) {
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + std::rotl(a + f + kSine[i] + m[static_cast<std::size_t>(g)],
                      kShift[i]);
    a = tmp;
  }
  return {h[0] + a, h[1] + b, h[2] + c, h[3] + d};
}

constexpr Md5::Digest kInit = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                               0x10325476u};

}  // namespace

Md5::Digest Md5::hash(const std::uint8_t* data, std::size_t len) {
  // Message + 0x80 pad + zeros + 64-bit little-endian bit length.
  std::vector<std::uint8_t> padded(data, data + len);
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0x00);
  const std::uint64_t bit_len = static_cast<std::uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    padded.push_back(static_cast<std::uint8_t>(bit_len >> (8 * i)));
  }

  Digest h = kInit;
  for (std::size_t off = 0; off < padded.size(); off += 64) {
    std::array<std::uint32_t, 16> m;
    for (int w = 0; w < 16; ++w) {
      std::uint32_t v;
      std::memcpy(&v, padded.data() + off + 4 * w, 4);  // little-endian host
      m[static_cast<std::size_t>(w)] = v;
    }
    h = compress(h, m);
  }
  return h;
}

std::string Md5::hex(const Digest& d) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint32_t word : d) {
    for (int byte = 0; byte < 4; ++byte) {
      const std::uint8_t b = static_cast<std::uint8_t>(word >> (8 * byte));
      out.push_back(digits[b >> 4]);
      out.push_back(digits[b & 0xF]);
    }
  }
  return out;
}

Md5::Digest Md5::compress_block(const std::array<std::uint32_t, 16>& block) {
  return compress(kInit, block);
}

}  // namespace hprng::prng
