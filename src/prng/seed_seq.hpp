#pragma once

#include <cstdint>

#include "prng/splitmix64.hpp"

namespace hprng::prng {

/// The ONE audited code path for "a seed for the i-th independent consumer
/// of root seed s": device batch baselines, the list-ranking and photon
/// kernels, the serving layer's client leases (docs/SERVING.md) and the
/// examples all derive per-walk / per-thread / per-client seeds here —
/// never with ad-hoc `seed + i` arithmetic at the call site.
///
/// Derivation: `derive(i) = splitmix64_mix(root ^ i * gamma)` with the
/// golden-ratio gamma of SplittableRandom. The gamma is odd, so
/// `i -> i * gamma (mod 2^64)` is injective; XOR with a fixed root and the
/// bijective SplitMix64 finaliser preserve that, hence for a fixed root
/// **distinct indices always yield distinct seeds** — the collision-free
/// guarantee the serving layer's lease registry relies on. (Seeds drawn
/// from *different* roots collide only at the 2^-64 birthday level, like
/// any 64-bit derivation.)
///
/// HybridPrng's Algorithm 1 is the other audited path: its per-walk start
/// vertices come from the host feed stream itself, so one (generator,
/// seed) pair pins every walk (see core/hybrid_prng.cpp).
class SeedSequence {
 public:
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;

  explicit constexpr SeedSequence(std::uint64_t root) : root_(root) {}

  /// Collision-free (per root) seed for consumer `index`; stateless.
  [[nodiscard]] constexpr std::uint64_t derive(std::uint64_t index) const {
    return splitmix64_mix(root_ ^ (index * kGamma));
  }

  /// Sequential derivation: derive(0), derive(1), ... for callers that
  /// hand out consumer indices implicitly.
  constexpr std::uint64_t next() { return derive(next_index_++); }

  /// Child sequence for two-level derivation (e.g. shard -> client). The
  /// child root is domain-separated from this sequence's own derive()
  /// values so `split(i).derive(j)` never aliases `derive(k)` by
  /// construction of the salt.
  [[nodiscard]] constexpr SeedSequence split(std::uint64_t index) const {
    return SeedSequence(derive(index) ^ kSplitSalt);
  }

  /// Root this sequence derives from (after any split salting).
  [[nodiscard]] constexpr std::uint64_t root() const { return root_; }

 private:
  static constexpr std::uint64_t kSplitSalt = 0xD1B54A32D192ED03ull;

  std::uint64_t root_;
  std::uint64_t next_index_ = 0;
};

}  // namespace hprng::prng
