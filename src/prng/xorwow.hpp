#pragma once

#include <cstdint>

#include "prng/splitmix64.hpp"

namespace hprng::prng {

/// XORWOW (Marsaglia, "Xorshift RNGs", JSS 2003) — a 5-word xorshift with a
/// Weyl sequence added to the output. This is the default generator of the
/// cuRAND device API, i.e. the "CURAND" baseline of Figures 3 and Tables
/// II/III. State layout and update match Marsaglia's published code.
struct Xorwow {
  static constexpr const char* kName = "xorwow";

  explicit Xorwow(std::uint64_t seed) {
    // cuRAND-style seeding: expand the 64-bit seed into the five state words
    // with a SplitMix sequence, avoiding the all-zero xorshift fixed point.
    SplitMix64 sm(seed);
    x = static_cast<std::uint32_t>(sm.next_u64());
    y = static_cast<std::uint32_t>(sm.next_u64());
    z = static_cast<std::uint32_t>(sm.next_u64());
    w = static_cast<std::uint32_t>(sm.next_u64());
    v = static_cast<std::uint32_t>(sm.next_u64());
    if ((x | y | z | w | v) == 0) x = 0x6C078965u;
    d = static_cast<std::uint32_t>(sm.next_u64());
  }

  std::uint32_t next_u32() {
    const std::uint32_t t = x ^ (x >> 2);
    x = y;
    y = z;
    z = w;
    w = v;
    v = (v ^ (v << 4)) ^ (t ^ (t << 1));
    d += 362437u;
    return v + d;
  }

  std::uint32_t x, y, z, w, v;
  std::uint32_t d;  // Weyl counter
};

}  // namespace hprng::prng
