#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace hprng::prng {

/// Runtime-polymorphic view of a pseudo random number generator.
///
/// Concrete generators (MT19937, XORWOW, ...) are plain structs with inline
/// `next_u32()/next_u64()` fast paths; this interface is what the statistical
/// batteries and the comparison harnesses consume, where one virtual call per
/// draw is irrelevant next to the test statistics themselves.
class Generator {
 public:
  virtual ~Generator() = default;

  /// Next 32 uniform bits.
  virtual std::uint32_t next_u32() = 0;

  /// Next 64 uniform bits. Default composes two 32-bit draws.
  virtual std::uint64_t next_u64() {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1) with 24 random bits.
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) by rejection (unbiased).
  std::uint64_t next_below(std::uint64_t bound);

  /// Human-readable generator name, used in reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Fresh instance of the same algorithm re-seeded with `seed`.
  [[nodiscard]] virtual std::unique_ptr<Generator> clone_reseeded(
      std::uint64_t seed) const = 0;

  // -- Jump-ahead hooks (parallel chunked feeds, docs/PERFORMANCE.md) -------

  /// True when discard_u32() is asymptotically cheaper than drawing — a
  /// closed-form state jump (LCG affine power, counter add). Parallel
  /// chunked consumers (host::BitFeeder) only split work when this holds;
  /// otherwise per-chunk skips would cost as much as the serial fill.
  [[nodiscard]] virtual bool cheap_jump() const { return false; }

  /// Advance the stream past `n` next_u32() draws. The default draws and
  /// drops (O(n)); generators with a closed-form jump override it.
  virtual void discard_u32(std::uint64_t n) {
    while (n-- != 0) (void)next_u32();
  }

  /// Fill `out` with out.size() consecutive next_u32() draws, leaving the
  /// stream exactly where that many single draws would. The default is the
  /// serial loop; generators with a lane-parallel formulation (SplitMix64,
  /// GlibcLcg) override it to dispatch through hprng::simd — bit-identical
  /// output either way.
  virtual void fill_u32(std::span<std::uint32_t> out) {
    for (auto& w : out) w = next_u32();
  }

  /// Independent copy at the *current* stream position (unlike
  /// clone_reseeded, which restarts). nullptr when the generator cannot be
  /// duplicated; Adapter-wrapped generators always can.
  [[nodiscard]] virtual std::unique_ptr<Generator> clone_state() const {
    return nullptr;
  }
};

/// Wraps a concrete generator type G (providing next_u32(), optionally
/// next_u64(), constructible from a u64 seed) behind the Generator interface.
template <typename G>
class Adapter final : public Generator {
 public:
  explicit Adapter(std::uint64_t seed) : g_(seed), seed_(seed) {}
  explicit Adapter(G g) : g_(std::move(g)), seed_(0) {}

  std::uint32_t next_u32() override { return g_.next_u32(); }

  std::uint64_t next_u64() override {
    if constexpr (requires(G& g) { g.next_u64(); }) {
      return g_.next_u64();
    } else {
      return Generator::next_u64();
    }
  }

  [[nodiscard]] std::string name() const override { return G::kName; }

  [[nodiscard]] std::unique_ptr<Generator> clone_reseeded(
      std::uint64_t seed) const override {
    return std::make_unique<Adapter<G>>(seed);
  }

  [[nodiscard]] bool cheap_jump() const override {
    return requires(G& g, std::uint64_t n) { g.discard_u32(n); };
  }

  void discard_u32(std::uint64_t n) override {
    if constexpr (requires(G& g) { g.discard_u32(n); }) {
      g_.discard_u32(n);
    } else {
      Generator::discard_u32(n);
    }
  }

  void fill_u32(std::span<std::uint32_t> out) override {
    if constexpr (requires(G& g) { g.fill_u32(out); }) {
      g_.fill_u32(out);
    } else {
      for (auto& w : out) w = g_.next_u32();
    }
  }

  [[nodiscard]] std::unique_ptr<Generator> clone_state() const override {
    return std::make_unique<Adapter<G>>(g_);
  }

  /// Access to the wrapped concrete generator (used by tests).
  G& raw() { return g_; }

 private:
  G g_;
  std::uint64_t seed_;
};

template <typename G>
std::unique_ptr<Generator> make_generator(std::uint64_t seed) {
  return std::make_unique<Adapter<G>>(seed);
}

}  // namespace hprng::prng
