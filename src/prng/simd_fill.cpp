// Out-of-line fill_u32 bodies for the generators with lane-parallel
// kernels. Kept here (not in the headers) so the prng headers stay free of
// the simd dispatch layer while hprng_prng links against hprng_simd.
#include "prng/lcg.hpp"
#include "prng/splitmix64.hpp"
#include "simd/simd.hpp"

namespace hprng::prng {

void SplitMix64::fill_u32(std::span<std::uint32_t> out) {
  simd::splitmix_fill_u32(&state, out.data(), out.size());
}

void GlibcLcg::fill_u32(std::span<std::uint32_t> out) {
  simd::glibc_lcg_fill_u32(&state, out.data(), out.size());
}

}  // namespace hprng::prng
