#pragma once

#include <array>
#include <cstdint>

namespace hprng::prng {

/// Mersenne Twister MT19937 (Matsumoto & Nishimura 1998), implemented from
/// the published recurrence. This is the algorithm behind the CUDA SDK
/// "MersenneTwister" sample the paper benchmarks against (Fig. 3) and the
/// list-ranking "Pure GPU MT" baseline (Fig. 7).
struct Mt19937 {
  static constexpr const char* kName = "mt19937";
  static constexpr int kN = 624;
  static constexpr int kM = 397;
  static constexpr std::uint32_t kMatrixA = 0x9908B0DFu;
  static constexpr std::uint32_t kUpperMask = 0x80000000u;
  static constexpr std::uint32_t kLowerMask = 0x7FFFFFFFu;

  explicit Mt19937(std::uint64_t seed) { reseed(static_cast<std::uint32_t>(seed)); }

  void reseed(std::uint32_t seed) {
    mt[0] = seed;
    for (int i = 1; i < kN; ++i) {
      mt[i] = 1812433253u * (mt[i - 1] ^ (mt[i - 1] >> 30)) +
              static_cast<std::uint32_t>(i);
    }
    index = kN;
  }

  std::uint32_t next_u32() {
    if (index >= kN) twist();
    std::uint32_t y = mt[index++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9D2C5680u;
    y ^= (y << 15) & 0xEFC60000u;
    y ^= y >> 18;
    return y;
  }

  void twist() {
    for (int i = 0; i < kN; ++i) {
      const std::uint32_t y =
          (mt[i] & kUpperMask) | (mt[(i + 1) % kN] & kLowerMask);
      std::uint32_t next = mt[(i + kM) % kN] ^ (y >> 1);
      if (y & 1u) next ^= kMatrixA;
      mt[i] = next;
    }
    index = 0;
  }

  std::array<std::uint32_t, kN> mt;
  int index = kN;
};

/// 64-bit Mersenne Twister MT19937-64 (Nishimura & Matsumoto 2000).
struct Mt19937_64 {
  static constexpr const char* kName = "mt19937-64";
  static constexpr int kN = 312;
  static constexpr int kM = 156;
  static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
  static constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
  static constexpr std::uint64_t kLowerMask = 0x7FFFFFFFull;

  explicit Mt19937_64(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    mt[0] = seed;
    for (int i = 1; i < kN; ++i) {
      mt[i] = 6364136223846793005ull * (mt[i - 1] ^ (mt[i - 1] >> 62)) +
              static_cast<std::uint64_t>(i);
    }
    index = kN;
  }

  std::uint64_t next_u64() {
    if (index >= kN) twist();
    std::uint64_t x = mt[index++];
    x ^= (x >> 29) & 0x5555555555555555ull;
    x ^= (x << 17) & 0x71D67FFFEDA60000ull;
    x ^= (x << 37) & 0xFFF7EEE000000000ull;
    x ^= x >> 43;
    return x;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  void twist() {
    for (int i = 0; i < kN; ++i) {
      const std::uint64_t x =
          (mt[i] & kUpperMask) | (mt[(i + 1) % kN] & kLowerMask);
      std::uint64_t next = mt[(i + kM) % kN] ^ (x >> 1);
      if (x & 1ull) next ^= kMatrixA;
      mt[i] = next;
    }
    index = 0;
  }

  std::array<std::uint64_t, kN> mt;
  int index = kN;
};

}  // namespace hprng::prng
