#include "prng/registry.hpp"

#include "prng/lcg.hpp"
#include "prng/md5.hpp"
#include "prng/mt19937.hpp"
#include "prng/mwc.hpp"
#include "prng/philox.hpp"
#include "prng/splitmix64.hpp"
#include "prng/xorwow.hpp"
#include "util/check.hpp"

namespace hprng::prng {

std::unique_ptr<Generator> make_by_name(const std::string& name,
                                        std::uint64_t seed) {
  if (name == GlibcLcg::kName) return make_generator<GlibcLcg>(seed);
  if (name == GlibcRandom::kName) return make_generator<GlibcRandom>(seed);
  if (name == Minstd::kName) return make_generator<Minstd>(seed);
  if (name == Mt19937::kName) return make_generator<Mt19937>(seed);
  if (name == Mt19937_64::kName) return make_generator<Mt19937_64>(seed);
  if (name == Xorwow::kName) return make_generator<Xorwow>(seed);
  if (name == Mwc::kName) return make_generator<Mwc>(seed);
  if (name == CudppMd5Rng::kName) return make_generator<CudppMd5Rng>(seed);
  if (name == Philox4x32::kName) return make_generator<Philox4x32>(seed);
  if (name == SplitMix64::kName) return make_generator<SplitMix64>(seed);
  HPRNG_CHECK(false, ("unknown generator name: " + name).c_str());
  return nullptr;
}

std::vector<std::string> known_generators() {
  return {GlibcLcg::kName,   GlibcRandom::kName, Minstd::kName,
          Mt19937::kName,    Mt19937_64::kName,  Xorwow::kName,
          Mwc::kName,        CudppMd5Rng::kName, Philox4x32::kName,
          SplitMix64::kName};
}

}  // namespace hprng::prng
