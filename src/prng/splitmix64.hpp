#pragma once

#include <cstdint>
#include <span>

namespace hprng::prng {

/// SplitMix64 (Steele, Lea, Flood; JDK8 SplittableRandom finaliser).
/// Used internally for seeding other generators from a single 64-bit seed
/// and as the optional output finaliser of the hybrid PRNG.
struct SplitMix64 {
  static constexpr const char* kName = "splitmix64";

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Skip `draws` next_u32() outputs in O(1): the state is a counter —
  /// each u32 draw consumes exactly one gamma increment.
  void discard_u32(std::uint64_t draws) {
    state += 0x9E3779B97F4A7C15ull * draws;
  }

  /// Bulk next_u32() draws through the hprng::simd dispatch (bit-identical
  /// to the serial loop); defined in simd_fill.cpp.
  void fill_u32(std::span<std::uint32_t> out);

  std::uint64_t state;
};

/// Stateless SplitMix64 finaliser step (a strong 64-bit mixer).
constexpr std::uint64_t splitmix64_mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace hprng::prng
