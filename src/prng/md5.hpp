#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hprng::prng {

/// RFC 1321 MD5, implemented from the specification. Used by the CUDPP-style
/// generator below; also exposed directly for tests against the RFC test
/// vectors. (MD5 is cryptographically broken as a hash; as a bit mixer for a
/// statistical RNG — its role in CUDPP rand() — it remains excellent.)
class Md5 {
 public:
  using Digest = std::array<std::uint32_t, 4>;

  /// Hash an arbitrary byte message (full padding per RFC 1321).
  static Digest hash(const std::uint8_t* data, std::size_t len);

  /// Digest rendered as the conventional 32-hex-digit string.
  static std::string hex(const Digest& d);

  /// One raw compression-function application on a single 16-word block
  /// with the standard initial chaining values. This is the hot path used
  /// by the CUDPP-style generator (no padding, fixed-size input).
  static Digest compress_block(const std::array<std::uint32_t, 16>& block);
};

/// CUDPP-style MD5 counter generator (Tzeng & Wei, I3D'08): each thread
/// hashes (seed, thread id, counter) and emits the four 32-bit digest words.
/// This is the "CUDPP" row of Table I / Table II.
struct CudppMd5Rng {
  static constexpr const char* kName = "cudpp-md5";

  explicit CudppMd5Rng(std::uint64_t seed, std::uint32_t thread_id = 0)
      : seed_lo(static_cast<std::uint32_t>(seed)),
        seed_hi(static_cast<std::uint32_t>(seed >> 32)),
        tid(thread_id) {}

  std::uint32_t next_u32() {
    if (lane == 0) {
      std::array<std::uint32_t, 16> block{};
      block[0] = seed_lo;
      block[1] = seed_hi;
      block[2] = tid;
      block[3] = counter_lo;
      block[4] = counter_hi;
      // Remaining words carry fixed domain-separation constants, mirroring
      // CUDPP's use of a fully-specified input block.
      for (int i = 5; i < 16; ++i) {
        block[static_cast<std::size_t>(i)] = 0x5A827999u * static_cast<std::uint32_t>(i);
      }
      out = Md5::compress_block(block);
      if (++counter_lo == 0) ++counter_hi;
    }
    const std::uint32_t v = out[static_cast<std::size_t>(lane)];
    lane = (lane + 1) & 3;
    return v;
  }

  /// O(1) jump-ahead over n u32 draws — counter arithmetic plus at most
  /// one compress_block for a mid-block landing. Equivalent to n
  /// next_u32() calls; detected by prng::Adapter as the cheap_jump hook.
  void discard_u32(std::uint64_t n) {
    if (lane != 0) {
      const std::uint64_t left = static_cast<std::uint64_t>(4 - lane);
      if (n < left) {
        lane += static_cast<int>(n);
        return;
      }
      n -= left;
      lane = 0;
    }
    add_counter(n >> 2);
    const int rem = static_cast<int>(n & 3);
    if (rem != 0) {
      // Re-evaluate the landing block the same way next_u32 would.
      std::array<std::uint32_t, 16> block{};
      block[0] = seed_lo;
      block[1] = seed_hi;
      block[2] = tid;
      block[3] = counter_lo;
      block[4] = counter_hi;
      for (int i = 5; i < 16; ++i) {
        block[static_cast<std::size_t>(i)] =
            0x5A827999u * static_cast<std::uint32_t>(i);
      }
      out = Md5::compress_block(block);
      add_counter(1);
      lane = rem;
    }
  }

  std::uint32_t seed_lo, seed_hi, tid;
  std::uint32_t counter_lo = 0, counter_hi = 0;
  Md5::Digest out{};
  int lane = 0;

 private:
  /// 64-bit counter += n.
  void add_counter(std::uint64_t n) {
    std::uint64_t c = (static_cast<std::uint64_t>(counter_hi) << 32) |
                      counter_lo;
    c += n;
    counter_lo = static_cast<std::uint32_t>(c);
    counter_hi = static_cast<std::uint32_t>(c >> 32);
  }
};

}  // namespace hprng::prng
