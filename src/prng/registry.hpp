#pragma once

#include <memory>
#include <string>
#include <vector>

#include "prng/generator.hpp"

namespace hprng::prng {

/// Construct a generator by name ("mt19937", "xorwow", "glibc-rand",
/// "glibc-lcg", "minstd", "mwc", "cudpp-md5", "philox4x32-10", "mt19937-64",
/// "splitmix64"). Aborts on unknown names; use known_generators() to probe.
std::unique_ptr<Generator> make_by_name(const std::string& name,
                                        std::uint64_t seed);

/// Names accepted by make_by_name, in presentation order.
std::vector<std::string> known_generators();

}  // namespace hprng::prng
