#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace hprng::prng {

/// The glibc TYPE_0 linear congruential generator:
///   state = state * 1103515245 + 12345 (mod 2^31), output = state.
/// This is the "LCG present in the glibc library" the paper uses as the
/// cheap host-side source of random bits (Sec. III-B).
struct GlibcLcg {
  static constexpr const char* kName = "glibc-lcg";

  explicit GlibcLcg(std::uint64_t seed)
      : state(static_cast<std::uint32_t>(seed == 0 ? 1 : seed)) {}

  /// One raw 31-bit draw, exactly as glibc TYPE_0 rand().
  std::uint32_t next_31() {
    state = state * 1103515245u + 12345u;
    return state & 0x7FFFFFFFu;
  }

  /// 32 uniform bits assembled from two draws (the raw stream only carries
  /// 31 bits and its low bits alternate; take the better high bits).
  std::uint32_t next_u32() {
    const std::uint32_t a = next_31() >> 15;  // 16 good bits
    const std::uint32_t b = next_31() >> 15;
    return (a << 16) | b;
  }

  /// Skip `draws` next_u32() outputs in O(log draws): the k-step map is the
  /// affine composition x -> A^k x + C_k (mod 2^32), built by
  /// square-and-multiply over (A, C) pairs. One u32 output = two raw steps.
  void discard_u32(std::uint64_t draws) {
    std::uint64_t k = draws * 2;
    std::uint32_t a = 1, c = 0;                     // accumulated f^k
    std::uint32_t ap = 1103515245u, cp = 12345u;    // f^(2^i)
    while (k != 0) {
      if ((k & 1) != 0) {
        c = ap * c + cp;
        a = ap * a;
      }
      cp = ap * cp + cp;
      ap = ap * ap;
      k >>= 1;
    }
    state = a * state + c;
  }

  /// Bulk next_u32() draws through the hprng::simd dispatch (bit-identical
  /// to the serial loop); defined in simd_fill.cpp.
  void fill_u32(std::span<std::uint32_t> out);

  std::uint32_t state;
};

/// The glibc TYPE_3 additive-feedback generator behind the default rand():
///   r[i] = r[i-3] + r[i-31] (mod 2^32), output = r[i] >> 1.
/// Initialised exactly like glibc srandom() (Knuth-style LCG fill followed
/// by discarding the first 310 outputs).
struct GlibcRandom {
  static constexpr const char* kName = "glibc-rand";

  explicit GlibcRandom(std::uint64_t seed);

  /// One 31-bit output, bit-compatible with glibc rand().
  std::uint32_t next_31();

  std::uint32_t next_u32() {
    const std::uint32_t a = next_31() >> 15;
    const std::uint32_t b = next_31() >> 15;
    return (a << 16) | b;
  }

  std::array<std::uint32_t, 31> r;
  int f;  // front pointer index (glibc fptr)
  int rr; // rear pointer index (glibc rptr)
};

/// MINSTD (Park-Miller) multiplicative LCG, a classical baseline.
struct Minstd {
  static constexpr const char* kName = "minstd";

  explicit Minstd(std::uint64_t seed)
      : state(static_cast<std::uint32_t>(seed % 2147483647u)) {
    if (state == 0) state = 1;
  }

  std::uint32_t next_31() {
    state = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(state) * 48271u) % 2147483647u);
    return state;
  }

  std::uint32_t next_u32() {
    const std::uint32_t a = next_31() >> 15;
    const std::uint32_t b = next_31() >> 15;
    return (a << 16) | b;
  }

  /// Skip `draws` next_u32() outputs in O(log draws): a multiplicative LCG
  /// jumps by modular exponentiation, state *= 48271^(2*draws) mod M.
  void discard_u32(std::uint64_t draws) {
    constexpr std::uint64_t kMod = 2147483647u;
    std::uint64_t k = draws * 2;
    std::uint64_t m = 48271u;
    std::uint64_t acc = 1;
    while (k != 0) {
      if ((k & 1) != 0) acc = acc * m % kMod;
      m = m * m % kMod;
      k >>= 1;
    }
    state = static_cast<std::uint32_t>(state * acc % kMod);
  }

  std::uint32_t state;
};

}  // namespace hprng::prng
