#pragma once

#include <cstdint>

#include "simd/simd.hpp"

// Per-ISA kernel entry points, compiled in their own translation units so
// the rest of the library builds without -mavx2. Declarations are
// unconditional; simd.cpp only calls the ones whose TU is in the build
// (HPRNG_SIMD_HAVE_AVX2 / HPRNG_SIMD_HAVE_NEON compile definitions).
//
// Fill kernels are pure functions of (initial state, out, n): the
// dispatcher owns the master-state update via the generator's closed-form
// jump, so ISA TUs never touch generator objects.
namespace hprng::simd::detail {

void derive_fill_u32_avx2(std::uint64_t root, std::uint64_t pos,
                          std::uint32_t* out, std::size_t n);
void splitmix_fill_u32_avx2(std::uint64_t state0, std::uint32_t* out,
                            std::size_t n);
void glibc_lcg_fill_u32_avx2(std::uint32_t state0, std::uint32_t* out,
                             std::size_t n);
/// Exactly kWalkGroup lanes, forward-only, constant 3-bit consumption.
void walk_draws_avx2(WalkLane* lanes, std::uint64_t draws, std::uint32_t wpd,
                     int len, bool finalize);

void glibc_lcg_fill_u32_neon(std::uint32_t state0, std::uint32_t* out,
                             std::size_t n);
/// Exactly 4 lanes (one NEON quad); the dispatcher tiles kWalkGroup
/// groups into quads and finishes ragged remainders on the scalar path.
void walk_draws_neon4(WalkLane* lanes, std::uint64_t draws, std::uint32_t wpd,
                      int len, bool finalize);

}  // namespace hprng::simd::detail
