// NEON kernels for hprng::simd (aarch64, where NEON is baseline). The
// 64-bit splitmix mixer has no cheap NEON formulation (no 64-bit lane
// multiply), so the derive/splitmix streams stay on the scalar path there;
// NEON accelerates the 32-bit LCG fill and a 4-lane walk quad.
#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstdint>

#include "prng/splitmix64.hpp"
#include "simd/kernels.hpp"

namespace hprng::simd::detail {
namespace {

std::uint32_t lcg_jump_raw(std::uint32_t s, std::uint64_t raw) {
  std::uint32_t a = 1, c = 0;
  std::uint32_t ap = 1103515245u, cp = 12345u;
  while (raw != 0) {
    if ((raw & 1) != 0) {
      c = ap * c + cp;
      a = ap * a;
    }
    cp = ap * cp + cp;
    ap = ap * ap;
    raw >>= 1;
  }
  return a * s + c;
}

}  // namespace

void glibc_lcg_fill_u32_neon(std::uint32_t state0, std::uint32_t* out,
                             std::size_t n) {
  constexpr std::uint32_t kA = 1103515245u;
  constexpr std::uint32_t kC = 12345u;
  constexpr std::size_t kW = 4;
  std::size_t i = 0;
  if (n >= kW) {
    // Lane l seeded l u32 draws (2*l raw steps) ahead; outputs contiguous.
    std::uint32_t s[kW];
    s[0] = state0;
    for (std::size_t l = 1; l < kW; ++l) s[l] = kA * (kA * s[l - 1] + kC) + kC;
    uint32x4_t S = vld1q_u32(s);
    std::uint32_t a6 = 1, c6 = 0;  // affine of 2*(kW-1) = 6 raw steps
    for (int t = 0; t < 6; ++t) {
      c6 = kA * c6 + kC;
      a6 *= kA;
    }
    const uint32x4_t vA = vdupq_n_u32(kA);
    const uint32x4_t vC = vdupq_n_u32(kC);
    const uint32x4_t vA6 = vdupq_n_u32(a6);
    const uint32x4_t vC6 = vdupq_n_u32(c6);
    const uint32x4_t m16 = vdupq_n_u32(0xFFFFu);
    for (; i + kW <= n; i += kW) {
      const uint32x4_t s1 = vaddq_u32(vmulq_u32(S, vA), vC);
      const uint32x4_t s2 = vaddq_u32(vmulq_u32(s1, vA), vC);
      const uint32x4_t hi =
          vshlq_n_u32(vandq_u32(vshrq_n_u32(s1, 15), m16), 16);
      const uint32x4_t lo = vandq_u32(vshrq_n_u32(s2, 15), m16);
      vst1q_u32(out + i, vorrq_u32(hi, lo));
      S = vaddq_u32(vmulq_u32(s2, vA6), vC6);
    }
  }
  std::uint32_t st = lcg_jump_raw(state0, 2 * static_cast<std::uint64_t>(i));
  for (; i < n; ++i) {
    const std::uint32_t s1 = kA * st + kC;
    const std::uint32_t s2 = kA * s1 + kC;
    out[i] = (((s1 >> 15) & 0xFFFFu) << 16) | ((s2 >> 15) & 0xFFFFu);
    st = s2;
  }
}

void walk_draws_neon4(WalkLane* lanes, std::uint64_t draws, std::uint32_t wpd,
                      int len, bool finalize) {
  // Four forward-only walks in lockstep — the NEON half-width sibling of
  // walk_draws_avx2; see that kernel for the shared-reader argument.
  std::uint32_t xs[4], ys[4], w[4];
  for (int l = 0; l < 4; ++l) {
    xs[l] = lanes[l].x;
    ys[l] = lanes[l].y;
  }
  uint32x4_t X = vld1q_u32(xs);
  uint32x4_t Y = vld1q_u32(ys);
  const uint32x4_t zero = vdupq_n_u32(0);
  const uint32x4_t one = vdupq_n_u32(1);
  const uint32x4_t three = vdupq_n_u32(3);
  const uint32x4_t four = vdupq_n_u32(4);
  const uint32x4_t seven = vdupq_n_u32(7);
  const uint64x2_t seven64 = vdupq_n_u64(7);
  for (std::uint64_t j = 0; j < draws; ++j) {
    uint64x2_t acc01 = vdupq_n_u64(0);  // accumulators of lanes 0..1
    uint64x2_t acc23 = vdupq_n_u64(0);  // accumulators of lanes 2..3
    int avail = 0;
    std::uint32_t pos = 0;
    for (int step = 0; step < len; ++step) {
      if (avail < 3) {
        while (avail <= 32 && pos < wpd) {
          for (int l = 0; l < 4; ++l) w[l] = lanes[l].bits[j * wpd + pos];
          const uint32x4_t wv = vld1q_u32(w);
          const int64x2_t shift = vdupq_n_s64(avail);
          acc01 = vorrq_u64(acc01, vshlq_u64(vmovl_u32(vget_low_u32(wv)), shift));
          acc23 = vorrq_u64(acc23, vshlq_u64(vmovl_u32(vget_high_u32(wv)), shift));
          ++pos;
          avail += 32;
        }
      }
      const uint32x2_t b01 = vmovn_u64(vandq_u64(acc01, seven64));
      const uint32x2_t b23 = vmovn_u64(vandq_u64(acc23, seven64));
      acc01 = vshrq_n_u64(acc01, 3);
      acc23 = vshrq_n_u64(acc23, 3);
      avail -= 3;
      const uint32x4_t B = vcombine_u32(b01, b23);
      const uint32x4_t move_y = vandq_u32(vcgtq_u32(B, zero), vcgtq_u32(four, B));
      const uint32x4_t move_x = vandq_u32(vcgtq_u32(B, three), vcgtq_u32(seven, B));
      const uint32x4_t dy =
          vandq_u32(vaddq_u32(vshlq_n_u32(X, 1), vsubq_u32(B, one)), move_y);
      const uint32x4_t dx =
          vandq_u32(vaddq_u32(vshlq_n_u32(Y, 1), vsubq_u32(B, four)), move_x);
      Y = vaddq_u32(Y, dy);
      X = vaddq_u32(X, dx);
    }
    vst1q_u32(xs, X);
    vst1q_u32(ys, Y);
    for (int l = 0; l < 4; ++l) {
      const std::uint64_t id =
          (static_cast<std::uint64_t>(xs[l]) << 32) | ys[l];
      lanes[l].out[j] = finalize ? prng::splitmix64_mix(id) : id;
    }
  }
  for (int l = 0; l < 4; ++l) {
    lanes[l].x = xs[l];
    lanes[l].y = ys[l];
  }
}

}  // namespace hprng::simd::detail

#endif  // __aarch64__ || __ARM_NEON
