#include "simd/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "expander/bit_reader.hpp"
#include "expander/gabber_galil.hpp"
#include "prng/lcg.hpp"
#include "prng/seed_seq.hpp"
#include "prng/splitmix64.hpp"
#include "simd/kernels.hpp"
#include "util/check.hpp"

namespace hprng::simd {
namespace {

Kernel probe_best() {
#if defined(HPRNG_SIMD_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Kernel::kAvx2;
#endif
#if defined(HPRNG_SIMD_HAVE_NEON)
  return Kernel::kNeon;
#endif
  return Kernel::kScalar;
}

Kernel initial_kernel() {
  const char* env = std::getenv("HPRNG_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Kernel k = Kernel::kScalar;
    if (!parse_kernel(env, &k)) {
      std::fprintf(stderr,
                   "hprng::simd: unknown HPRNG_SIMD value \"%s\" "
                   "(want scalar|avx2|neon); using the hardware probe\n",
                   env);
    } else if (!supported(k)) {
      std::fprintf(stderr,
                   "hprng::simd: HPRNG_SIMD=%s is not supported on this "
                   "build/machine; using the hardware probe\n",
                   to_string(k));
    } else {
      return k;
    }
  }
  return probe_best();
}

std::atomic<int>& active_slot() {
  static std::atomic<int> slot{static_cast<int>(initial_kernel())};
  return slot;
}

// -- Scalar reference kernels ------------------------------------------------
// These ARE the semantics: each is written in terms of the library types it
// mirrors, and every vector kernel is pinned bit-identical to it.

void derive_fill_scalar(std::uint64_t root, std::uint64_t pos,
                        std::uint32_t* out, std::size_t n) {
  const prng::SeedSequence seq(root);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = static_cast<std::uint32_t>(seq.derive(pos + k));
  }
}

void splitmix_fill_scalar(std::uint64_t state0, std::uint32_t* out,
                          std::size_t n) {
  prng::SplitMix64 g(state0);
  for (std::size_t i = 0; i < n; ++i) out[i] = g.next_u32();
}

void walk_draws_scalar(WalkLane* lanes, int n_lanes, std::uint64_t draws,
                       std::uint32_t wpd, int len,
                       expander::NeighborPolicy policy, bool finalize) {
  for (int l = 0; l < n_lanes; ++l) {
    expander::WalkState s;
    s.v = expander::Vertex{lanes[l].x, lanes[l].y};
    for (std::uint64_t j = 0; j < draws; ++j) {
      expander::BitReader bits({lanes[l].bits + j * wpd, wpd});
      expander::walk(s, bits, len, policy, expander::WalkMode::kForwardOnly);
      const std::uint64_t id = s.v.id();
      lanes[l].out[j] = finalize ? prng::splitmix64_mix(id) : id;
    }
    lanes[l].x = s.v.x;
    lanes[l].y = s.v.y;
  }
}

}  // namespace

const char* to_string(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kAvx2: return "avx2";
    case Kernel::kNeon: return "neon";
  }
  return "scalar";
}

bool parse_kernel(const std::string& name, Kernel* out) {
  if (name == "scalar") { *out = Kernel::kScalar; return true; }
  if (name == "avx2") { *out = Kernel::kAvx2; return true; }
  if (name == "neon") { *out = Kernel::kNeon; return true; }
  return false;
}

bool supported(Kernel k) {
  switch (k) {
    case Kernel::kScalar:
      return true;
    case Kernel::kAvx2:
#if defined(HPRNG_SIMD_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Kernel::kNeon:
#if defined(HPRNG_SIMD_HAVE_NEON)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

Kernel best_supported() { return probe_best(); }

Kernel active_kernel() {
  return static_cast<Kernel>(active_slot().load(std::memory_order_relaxed));
}

const char* kernel_name() { return to_string(active_kernel()); }

int lane_width_u32(Kernel k) {
  switch (k) {
    case Kernel::kScalar: return 1;
    case Kernel::kAvx2: return 8;
    case Kernel::kNeon: return 4;
  }
  return 1;
}

int lane_width_u32() { return lane_width_u32(active_kernel()); }

bool force_kernel(Kernel k) {
  if (!supported(k)) return false;
  active_slot().store(static_cast<int>(k), std::memory_order_relaxed);
  return true;
}

void derive_fill_u32(std::uint64_t root, std::uint64_t pos,
                     std::uint32_t* out, std::size_t n) {
  switch (active_kernel()) {
#if defined(HPRNG_SIMD_HAVE_AVX2)
    case Kernel::kAvx2:
      detail::derive_fill_u32_avx2(root, pos, out, n);
      return;
#endif
    default:
      derive_fill_scalar(root, pos, out, n);
      return;
  }
}

void splitmix_fill_u32(std::uint64_t* state, std::uint32_t* out,
                       std::size_t n) {
  switch (active_kernel()) {
#if defined(HPRNG_SIMD_HAVE_AVX2)
    case Kernel::kAvx2:
      detail::splitmix_fill_u32_avx2(*state, out, n);
      break;
#endif
    default:
      splitmix_fill_scalar(*state, out, n);
      break;
  }
  // The state is a counter: n u32 draws advance it by n gamma increments,
  // identical no matter which kernel produced the outputs.
  *state += 0x9E3779B97F4A7C15ull * n;
}

void glibc_lcg_fill_u32(std::uint32_t* state, std::uint32_t* out,
                        std::size_t n) {
  switch (active_kernel()) {
#if defined(HPRNG_SIMD_HAVE_AVX2)
    case Kernel::kAvx2: {
      detail::glibc_lcg_fill_u32_avx2(*state, out, n);
      prng::GlibcLcg g(1);
      g.state = *state;
      g.discard_u32(n);  // closed-form affine jump over the n draws
      *state = g.state;
      return;
    }
#endif
#if defined(HPRNG_SIMD_HAVE_NEON)
    case Kernel::kNeon: {
      detail::glibc_lcg_fill_u32_neon(*state, out, n);
      prng::GlibcLcg g(1);
      g.state = *state;
      g.discard_u32(n);
      *state = g.state;
      return;
    }
#endif
    default: {
      prng::GlibcLcg g(1);
      g.state = *state;
      for (std::size_t i = 0; i < n; ++i) out[i] = g.next_u32();
      *state = g.state;
      return;
    }
  }
}

void walk_draws(WalkLane* lanes, int n_lanes, std::uint64_t draws,
                std::uint32_t wpd, int len, expander::NeighborPolicy policy,
                bool finalize) {
  HPRNG_CHECK(walk_vectorizable(policy, expander::WalkMode::kForwardOnly),
              "walk_draws requires a constant-consumption forward walk");
  HPRNG_CHECK(n_lanes >= 0 && n_lanes <= kWalkGroup,
              "walk_draws lane count exceeds the group width");
  // In forward-only mode kMod7 (b==7 -> k=0 identity neighbor) and
  // kSevenStays (b==7 -> stay) reach the same vertex, so a single vector
  // path covers every vectorizable policy.
  switch (active_kernel()) {
#if defined(HPRNG_SIMD_HAVE_AVX2)
    case Kernel::kAvx2:
      if (n_lanes == kWalkGroup) {
        detail::walk_draws_avx2(lanes, draws, wpd, len, finalize);
        return;
      }
      break;  // ragged trailing group: scalar path below
#endif
#if defined(HPRNG_SIMD_HAVE_NEON)
    case Kernel::kNeon:
      while (n_lanes >= 4) {
        detail::walk_draws_neon4(lanes, draws, wpd, len, finalize);
        lanes += 4;
        n_lanes -= 4;
      }
      break;  // <4 leftover lanes: scalar path below
#endif
    default:
      break;
  }
  walk_draws_scalar(lanes, n_lanes, draws, wpd, len, policy, finalize);
}

}  // namespace hprng::simd
