#pragma once

#include <cstdint>
#include <string>

#include "expander/walk.hpp"

namespace hprng::simd {

/// Runtime-dispatched vector kernels for the serve-fill hot paths
/// (docs/PERFORMANCE.md §6): the counter-addressed serve feed, the
/// cheap-generator bulk fills behind Generator::fill_u32, and the
/// lane-batched expander-walk step. Every kernel is bit-identical to its
/// scalar reference — the dispatch decides speed, never the stream.
///
/// The instruction set is probed once (CPUID on x86-64, compile-time
/// baseline on aarch64) at first use; `HPRNG_SIMD=scalar|avx2|neon`
/// overrides the probe for testing, and force_kernel() switches at run
/// time (the serve_load --simd flag and the kernel-equivalence tests).
enum class Kernel : int {
  kScalar = 0,  ///< portable reference path, always supported
  kAvx2 = 1,    ///< x86-64 AVX2: 8 u32 / 4 u64 lanes
  kNeon = 2,    ///< aarch64 NEON: 4 u32 lanes
};
inline constexpr int kNumKernels = 3;

/// Stable lower-case kernel name ("scalar", "avx2", "neon") — what the
/// simd_kernel instruments and the bench JSONs record.
const char* to_string(Kernel k);

/// Parse a kernel name as printed by to_string(). Returns false (and
/// leaves *out untouched) on an unknown name.
bool parse_kernel(const std::string& name, Kernel* out);

/// Whether `k` can execute on this build + machine. kScalar always can;
/// kAvx2 needs an x86-64 build and the CPUID AVX2 bit; kNeon an aarch64
/// build (NEON is baseline there).
[[nodiscard]] bool supported(Kernel k);

/// The widest supported kernel (avx2 > neon > scalar).
[[nodiscard]] Kernel best_supported();

/// The kernel calls dispatch to right now. First use probes the hardware
/// and honours the HPRNG_SIMD environment override (an unsupported or
/// unknown value warns once on stderr and falls back to the probe).
[[nodiscard]] Kernel active_kernel();

/// to_string(active_kernel()) — the observability spelling.
[[nodiscard]] const char* kernel_name();

/// u32 lanes per vector op of `k` (1 for scalar, 8 for AVX2, 4 for NEON).
[[nodiscard]] int lane_width_u32(Kernel k);

/// lane_width_u32(active_kernel()).
[[nodiscard]] int lane_width_u32();

/// Force dispatch to `k` for the rest of the process (serve_load --simd,
/// kernel-equivalence tests). Returns false — leaving dispatch unchanged —
/// when `k` is not supported here.
bool force_kernel(Kernel k);

// -- Counter / cheap-generator bulk fills -----------------------------------

/// out[k] = low 32 bits of SeedSequence(root).derive(pos + k), for
/// k in [0, n) — the serve-path counter feed (HybridPrng::fill_leased).
void derive_fill_u32(std::uint64_t root, std::uint64_t pos,
                     std::uint32_t* out, std::size_t n);

/// Exactly n SplitMix64 next_u32() draws starting from *state; *state is
/// left where n sequential draws leave it (the counter jump).
void splitmix_fill_u32(std::uint64_t* state, std::uint32_t* out,
                       std::size_t n);

/// Exactly n GlibcLcg next_u32() draws starting from *state; *state is
/// left where n sequential draws leave it (the affine jump). Lane l of a
/// W-wide kernel produces outputs l, l+W, l+2W, ... seeded at its
/// jump-ahead offset, so any lane width emits the identical stream.
void glibc_lcg_fill_u32(std::uint32_t* state, std::uint32_t* out,
                        std::size_t n);

// -- Lane-batched expander walks --------------------------------------------

/// Fixed tid-group width of the lane-batched GENERATE kernels
/// (sim::Device::launch_batched): chosen once, independent of the active
/// kernel, so the batching grid never depends on the dispatch decision.
inline constexpr int kWalkGroup = 8;

/// One independent forward-only walk advanced by walk_draws(): its vertex,
/// its word-aligned feed slice (draws * wpd words) and its output slots.
struct WalkLane {
  std::uint32_t x = 0;
  std::uint32_t y = 0;
  const std::uint32_t* bits = nullptr;  ///< draws * wpd feed words
  std::uint64_t* out = nullptr;         ///< draws output slots
};

/// Whether walk_draws() can serve this walk configuration. Forward-only
/// walks under a constant-consumption policy read exactly 3 bits per step
/// at lane-invariant bit positions, which is what makes lockstep lanes
/// possible; kRejection's variable consumption (and kAlternating's side
/// flip) stay on the per-walk scalar path.
[[nodiscard]] constexpr bool walk_vectorizable(
    expander::NeighborPolicy policy, expander::WalkMode mode) {
  return mode == expander::WalkMode::kForwardOnly &&
         policy != expander::NeighborPolicy::kRejection;
}

/// Advance `n_lanes` (<= kWalkGroup) independent walks `draws` draws of
/// `len` steps each, in lockstep across vector lanes where the active
/// kernel allows. Each draw starts on a fresh word-aligned reader over its
/// own wpd-word slice, exactly like HybridPrng::ThreadRng; outputs are the
/// reached vertex ids (splitmix64-finalised when `finalize`). Lane
/// vertices are updated in place. Requires walk_vectorizable(policy,
/// kForwardOnly) — i.e. policy != kRejection (checked).
void walk_draws(WalkLane* lanes, int n_lanes, std::uint64_t draws,
                std::uint32_t wpd, int len, expander::NeighborPolicy policy,
                bool finalize);

}  // namespace hprng::simd
