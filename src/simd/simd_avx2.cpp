// AVX2 kernels for hprng::simd. This translation unit is compiled with
// -mavx2 and only ever entered after the runtime CPUID probe in simd.cpp
// confirms support, so it may use the full AVX2 instruction set.
//
// Every kernel here is pinned bit-identical to its scalar reference in
// simd.cpp by tests/simd_kernel_test.cpp and the golden-vector suite.
#include <immintrin.h>

#include <cstdint>

#include "prng/splitmix64.hpp"
#include "simd/kernels.hpp"

namespace hprng::simd::detail {
namespace {

constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ull;

inline __m256i set1_u64(std::uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// Low 64 bits of the lane-wise 64x64 product (AVX2 has no 64-bit mullo):
/// lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32).
inline __m256i mul64_lo(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i c1 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  const __m256i c2 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i cross = _mm256_add_epi64(c1, c2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/// prng::splitmix64_mix on four u64 lanes (gamma add + double xorshift-mul
/// + final xorshift), kept textually parallel to the scalar mixer.
inline __m256i splitmix_mix4(__m256i z) {
  z = _mm256_add_epi64(z, set1_u64(kGamma));
  z = mul64_lo(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
               set1_u64(0xBF58476D1CE4E5B9ull));
  z = mul64_lo(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
               set1_u64(0x94D049BB133111EBull));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Pack one 32-bit dword per u64 lane of z0 (lanes 0..3) and z1 (lanes
/// 4..7) into a single u32x8 vector. `sel` picks dwords 0,2,4,6 of each
/// source for the low halves or 1,3,5,7 for the high halves.
inline __m256i pack_u64_dwords(__m256i z0, __m256i z1, __m256i sel) {
  const __m256i a = _mm256_permutevar8x32_epi32(z0, sel);
  const __m256i b = _mm256_permutevar8x32_epi32(z1, sel);
  return _mm256_inserti128_si256(a, _mm256_castsi256_si128(b), 1);
}

/// Shared core of the two splitmix-family streams: lane k produces
///   mix(xor_mask ^ (add0 + k * kGamma))
/// taking the low (kHigh=false) or high (kHigh=true) 32 bits. The counter
/// term is strength-reduced: each 8-wide iteration adds 8*kGamma.
template <bool kHigh>
void mix_counter_stream(std::uint64_t add0, std::uint64_t xor_mask,
                        std::uint32_t* out, std::size_t n) {
  const __m256i sel = kHigh ? _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0)
                            : _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i xm = set1_u64(xor_mask);
  const __m256i step = set1_u64(kGamma * 8);
  __m256i c0 = _mm256_add_epi64(
      set1_u64(add0),
      _mm256_setr_epi64x(0, static_cast<long long>(kGamma),
                         static_cast<long long>(kGamma * 2),
                         static_cast<long long>(kGamma * 3)));
  __m256i c1 = _mm256_add_epi64(c0, set1_u64(kGamma * 4));
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m256i z0 = splitmix_mix4(_mm256_xor_si256(xm, c0));
    const __m256i z1 = splitmix_mix4(_mm256_xor_si256(xm, c1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        pack_u64_dwords(z0, z1, sel));
    c0 = _mm256_add_epi64(c0, step);
    c1 = _mm256_add_epi64(c1, step);
  }
  for (; k < n; ++k) {
    const std::uint64_t z = prng::splitmix64_mix(xor_mask ^ (add0 + k * kGamma));
    out[k] = static_cast<std::uint32_t>(kHigh ? (z >> 32) : z);
  }
}

/// State of GlibcLcg after `raw` raw steps from `s` via the affine
/// square-and-multiply jump (mirrors GlibcLcg::discard_u32; one u32 output
/// = two raw steps).
std::uint32_t lcg_jump_raw(std::uint32_t s, std::uint64_t raw) {
  std::uint32_t a = 1, c = 0;
  std::uint32_t ap = 1103515245u, cp = 12345u;
  while (raw != 0) {
    if ((raw & 1) != 0) {
      c = ap * c + cp;
      a = ap * a;
    }
    cp = ap * cp + cp;
    ap = ap * ap;
    raw >>= 1;
  }
  return a * s + c;
}

}  // namespace

void derive_fill_u32_avx2(std::uint64_t root, std::uint64_t pos,
                          std::uint32_t* out, std::size_t n) {
  // SeedSequence(root).derive(i) = splitmix64_mix(root ^ (i * kGamma)),
  // taken low 32. The counter term (pos + k) * kGamma is affine in k.
  mix_counter_stream<false>(pos * kGamma, root, out, n);
}

void splitmix_fill_u32_avx2(std::uint64_t state0, std::uint32_t* out,
                            std::size_t n) {
  // SplitMix64{s0} draw k is the high 32 bits of the mix core applied to
  // s0 + (k+1) * kGamma, i.e. splitmix64_mix(s0 + k * kGamma).
  mix_counter_stream<true>(state0, 0, out, n);
}

void glibc_lcg_fill_u32_avx2(std::uint32_t state0, std::uint32_t* out,
                             std::size_t n) {
  constexpr std::uint32_t kA = 1103515245u;
  constexpr std::uint32_t kC = 12345u;
  constexpr std::size_t kW = 8;
  std::size_t i = 0;
  if (n >= kW) {
    // Lane l is seeded 2*l raw steps (= l u32 draws) ahead, so lane l of
    // iteration t computes output t*kW + l exactly; outputs land
    // contiguously and the stream is identical to the serial one.
    alignas(32) std::uint32_t s[kW];
    s[0] = state0;
    for (std::size_t l = 1; l < kW; ++l) s[l] = kA * (kA * s[l - 1] + kC) + kC;
    __m256i S = _mm256_load_si256(reinterpret_cast<const __m256i*>(s));
    // Per iteration each lane advances two raw steps in-vector and then
    // jumps 2*(kW-1) raw steps to its next output slot; fold both into a
    // single affine advance of 2*kW raw steps applied to s1's successor.
    const std::uint32_t a14 = [] {
      std::uint32_t a = 1;
      for (int t = 0; t < 14; ++t) a *= kA;
      return a;
    }();
    const std::uint32_t c14 = [] {
      std::uint32_t a = 1, c = 0;
      for (int t = 0; t < 14; ++t) {
        c = kA * c + kC;
        a *= kA;
      }
      return c;
    }();
    const __m256i vA = _mm256_set1_epi32(static_cast<int>(kA));
    const __m256i vC = _mm256_set1_epi32(static_cast<int>(kC));
    const __m256i vA14 = _mm256_set1_epi32(static_cast<int>(a14));
    const __m256i vC14 = _mm256_set1_epi32(static_cast<int>(c14));
    const __m256i m16 = _mm256_set1_epi32(0xFFFF);
    for (; i + kW <= n; i += kW) {
      const __m256i s1 = _mm256_add_epi32(_mm256_mullo_epi32(S, vA), vC);
      const __m256i s2 = _mm256_add_epi32(_mm256_mullo_epi32(s1, vA), vC);
      // next_u32 = ((s1 >> 15) & 0xFFFF) << 16 | ((s2 >> 15) & 0xFFFF)
      // (the 31-bit mask in next_31 is subsumed by the 16-bit mask here).
      const __m256i hi =
          _mm256_slli_epi32(_mm256_and_si256(_mm256_srli_epi32(s1, 15), m16), 16);
      const __m256i lo = _mm256_and_si256(_mm256_srli_epi32(s2, 15), m16);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_or_si256(hi, lo));
      S = _mm256_add_epi32(_mm256_mullo_epi32(s2, vA14), vC14);
    }
  }
  // Ragged tail: resume serially from the state after i u32 draws.
  std::uint32_t st = lcg_jump_raw(state0, 2 * static_cast<std::uint64_t>(i));
  for (; i < n; ++i) {
    const std::uint32_t s1 = kA * st + kC;
    const std::uint32_t s2 = kA * s1 + kC;
    out[i] = (((s1 >> 15) & 0xFFFFu) << 16) | ((s2 >> 15) & 0xFFFFu);
    st = s2;
  }
}

void walk_draws_avx2(WalkLane* lanes, std::uint64_t draws, std::uint32_t wpd,
                     int len, bool finalize) {
  // Eight forward-only walks in lockstep, one per u32 lane. Every draw of
  // every lane starts a fresh word-aligned reader over its own wpd-word
  // slice and consumes a constant 3 bits per step, so the reader position
  // is lane-invariant: one shared (avail, pos) pair drives eight 64-bit
  // accumulators that mirror expander::BitReader::refill exactly.
  alignas(32) std::uint32_t xs[8], ys[8], w[8];
  for (int l = 0; l < 8; ++l) {
    xs[l] = lanes[l].x;
    ys[l] = lanes[l].y;
  }
  __m256i X = _mm256_load_si256(reinterpret_cast<const __m256i*>(xs));
  __m256i Y = _mm256_load_si256(reinterpret_cast<const __m256i*>(ys));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i four = _mm256_set1_epi32(4);
  const __m256i seven = _mm256_set1_epi32(7);
  const __m256i seven64 = set1_u64(7);
  const __m256i sel_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  for (std::uint64_t j = 0; j < draws; ++j) {
    __m256i acc_lo = zero;  // accumulators of lanes 0..3
    __m256i acc_hi = zero;  // accumulators of lanes 4..7
    int avail = 0;
    std::uint32_t pos = 0;
    for (int step = 0; step < len; ++step) {
      if (avail < 3) {
        while (avail <= 32 && pos < wpd) {
          for (int l = 0; l < 8; ++l) w[l] = lanes[l].bits[j * wpd + pos];
          const __m256i wv =
              _mm256_load_si256(reinterpret_cast<const __m256i*>(w));
          const __m128i shift = _mm_cvtsi32_si128(avail);
          acc_lo = _mm256_or_si256(
              acc_lo, _mm256_sll_epi64(
                          _mm256_cvtepu32_epi64(_mm256_castsi256_si128(wv)),
                          shift));
          acc_hi = _mm256_or_si256(
              acc_hi, _mm256_sll_epi64(
                          _mm256_cvtepu32_epi64(_mm256_extracti128_si256(wv, 1)),
                          shift));
          ++pos;
          avail += 32;
        }
      }
      const __m256i b_lo = _mm256_and_si256(acc_lo, seven64);
      const __m256i b_hi = _mm256_and_si256(acc_hi, seven64);
      acc_lo = _mm256_srli_epi64(acc_lo, 3);
      acc_hi = _mm256_srli_epi64(acc_hi, 3);
      avail -= 3;
      const __m256i B = pack_u64_dwords(b_lo, b_hi, sel_lo);
      // Forward Gabber-Galil neighbor, branch-free: b in 1..3 moves
      // y += 2x + (b-1); b in 4..6 moves x += 2y + (b-4); b == 0 stays and
      // b == 7 stays under both kMod7 (identity neighbor) and kSevenStays.
      const __m256i move_y = _mm256_and_si256(_mm256_cmpgt_epi32(B, zero),
                                              _mm256_cmpgt_epi32(four, B));
      const __m256i move_x = _mm256_and_si256(_mm256_cmpgt_epi32(B, three),
                                              _mm256_cmpgt_epi32(seven, B));
      const __m256i dy = _mm256_and_si256(
          _mm256_add_epi32(_mm256_slli_epi32(X, 1), _mm256_sub_epi32(B, one)),
          move_y);
      const __m256i dx = _mm256_and_si256(
          _mm256_add_epi32(_mm256_slli_epi32(Y, 1), _mm256_sub_epi32(B, four)),
          move_x);
      Y = _mm256_add_epi32(Y, dy);
      X = _mm256_add_epi32(X, dx);
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(xs), X);
    _mm256_store_si256(reinterpret_cast<__m256i*>(ys), Y);
    for (int l = 0; l < 8; ++l) {
      const std::uint64_t id =
          (static_cast<std::uint64_t>(xs[l]) << 32) | ys[l];
      lanes[l].out[j] = finalize ? prng::splitmix64_mix(id) : id;
    }
  }
  for (int l = 0; l < 8; ++l) {
    lanes[l].x = xs[l];
    lanes[l].y = ys[l];
  }
}

}  // namespace hprng::simd::detail
