#pragma once

// hprng::net — wire format for RNG-as-a-service (docs/NETWORK.md).
//
// The paper's on-demand property only scales past one process if the
// serving layer can hand leased substreams across the wire. This header
// is the normative frame codec: a compact length-prefixed binary framing
// with a versioned header, one op byte, a client correlation id and a
// CRC-32 trailer over everything the length covers. The codec is the
// trust boundary — decode() never crashes, never over-reads, and never
// yields a frame whose bytes were damaged in flight (the CRC catches
// every single-bit flip; net_frame_test proves it exhaustively).
//
// Frame layout (all integers little-endian; docs/NETWORK.md §2):
//
//   u32 len         byte count of everything after this field
//   u8  version     wire version (kWireVersion); the server rejects
//                   mismatches with kError/kVersionMismatch
//   u8  op          op code (Op)
//   u16 flags       reserved, zero on the wire today
//   u64 request_id  client-chosen correlation id, echoed in replies
//   ..  payload     op-specific body (len - 16 bytes)
//   u32 crc         CRC-32 (state::crc32) over version..payload
//
// Payload schemas are built with WireWriter and read with WireReader, a
// bounded fail-latching cursor in the style of state::SectionReader: a
// malformed payload reads as zeros and reports !ok() once at the end, so
// op handlers validate with a single branch instead of aborting.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace hprng::net {

/// The wire version this build speaks natively. Bump on any frame-layout
/// or payload-schema change. Servers accept the window
/// [kMinWireVersion, kWireVersion] and parse version-gated payload fields
/// per the frame's own version byte, so a rolling restart can upgrade
/// servers ahead of clients one version at a time (docs/NETWORK.md §7).
/// v2 appends the tenant id to the kLease payload and rejected_quota to
/// the kStatAck payload (docs/QOS.md).
inline constexpr std::uint8_t kWireVersion = 2;

/// Oldest wire version still accepted — one version of back-compat, the
/// rolling-restart window. Frames below it get kError/kVersionMismatch.
inline constexpr std::uint8_t kMinWireVersion = 1;

/// Hello payload magic ("HPRN" little-endian) — rejects non-hprng peers
/// that happen to produce a CRC-valid frame.
inline constexpr std::uint32_t kHelloMagic = 0x4E525048u;

/// Hard cap on the `len` field. A frame announcing more is rejected
/// immediately (kBad), before any buffering — the oversized-length guard
/// that keeps a hostile or corrupt peer from ballooning the read buffer.
inline constexpr std::size_t kMaxFrameLen = (1u << 24);  // 16 MiB

/// Bytes of header covered by `len` besides payload + crc.
inline constexpr std::size_t kHeaderRest = 1 + 1 + 2 + 8;
/// Smallest legal `len` (empty payload).
inline constexpr std::size_t kMinFrameLen = kHeaderRest + 4;

/// Largest fill the protocol serves in one request, in u64 words. Keeps
/// the largest legal kFillAck inside kMaxFrameLen with header headroom.
inline constexpr std::size_t kMaxFillWords = (1u << 20);  // 8 MiB of words

/// Op codes (docs/NETWORK.md §3). Values are wire-stable.
enum class Op : std::uint8_t {
  kHello = 1,      ///< client → server: magic, proto version, client name
  kHelloAck,       ///< server → client: proto, backend, shards, max fill
  kLease,          ///< open a fresh lease (optional shard-affinity key)
  kLeaseAck,       ///< lease id + its (shard, slot) placement
  kFill,           ///< serve the lease's next n words
  kFillAck,        ///< serve::Status + the words (kOk only)
  kRelease,        ///< return the lease to the pool
  kReleaseAck,     ///< ok flag
  kAdopt,          ///< re-claim an orphaned / restored lease by id
  kAdoptAck,       ///< ok flag
  kStat,           ///< service statistics probe
  kStatAck,        ///< the Stats fields (docs/NETWORK.md §3.6)
  kError,          ///< server → client: ErrCode + message
  kCkpt,           ///< checkpoint the service to a server-side path
  kCkptAck,        ///< ok flag + error text
  kAdoptables,     ///< list adoptable lease ids (orphans + restored)
  kAdoptablesAck,  ///< u32 count + ids
  kQuality,        ///< quality-scrubber report probe (docs/NETWORK.md §3.8)
  kQualityAck,     ///< present flag + the QualityReport fields
};

[[nodiscard]] const char* to_string(Op op);
[[nodiscard]] bool known_op(std::uint8_t raw);

/// Protocol-level error codes carried by kError frames. Fatal codes close
/// the connection after the reply flushes; non-fatal ones leave it open
/// (docs/NETWORK.md §4).
enum class ErrCode : std::uint32_t {
  kBadFrame = 1,     ///< framing/CRC damage (fatal)
  kVersionMismatch,  ///< wire or hello version gate (fatal)
  kBadRequest,       ///< malformed payload / op out of sequence (fatal)
  kUnknownLease,     ///< fill/release/adopt of a lease this server lacks
  kLeaseExhausted,   ///< pool full — retry later or elsewhere
  kBackpressure,     ///< per-connection pending-fill window full (shed)
  kClosing,          ///< server is shutting down
};

[[nodiscard]] const char* to_string(ErrCode code);
[[nodiscard]] bool fatal(ErrCode code);

/// One decoded frame. `payload` owns its bytes (copied out of the read
/// buffer), so frames outlive buffer compaction.
struct Frame {
  std::uint8_t version = kWireVersion;
  Op op = Op::kHello;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::string payload;
};

/// Encode a frame to its exact wire image. Aborts (HPRNG_CHECK) if the
/// payload alone exceeds kMaxFrameLen — internal senders size payloads by
/// kMaxFillWords, so an oversized encode is a programming error.
[[nodiscard]] std::string encode(const Frame& frame);

/// Streaming decode outcome.
enum class Decode {
  kNeedMore,  ///< the buffer holds a frame prefix; read more bytes
  kFrame,     ///< *out holds the frame; *consumed bytes were used
  kBad,       ///< unrecoverable framing damage; close the connection
};

/// Try to decode one frame from the front of `buf`. On kFrame, *consumed
/// is the full frame size to drop from the buffer. On kBad, *error names
/// the damage (oversized length, short length, CRC mismatch). kNeedMore
/// consumes nothing. Never reads past buf, never aborts.
Decode decode(std::string_view buf, Frame* out, std::size_t* consumed,
              std::string* error);

/// Payload serialiser: little-endian scalars, u32-length-prefixed strings,
/// raw word spans.
class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  /// u32 length + raw bytes.
  void put_str(std::string_view s);
  /// Raw little-endian u64 words, no length prefix (kFillAck bodies — the
  /// word count travels in its own field).
  void put_words(std::span<const std::uint64_t> words);

  [[nodiscard]] std::string take() { return std::move(buf_); }
  [[nodiscard]] const std::string& str() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounded fail-latching payload cursor (state::SectionReader's contract:
/// reads past the end or through a corrupt length prefix latch !ok() and
/// return zero values; callers stream reads and check ok() once).
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::string get_str();
  /// Read exactly out.size() little-endian words.
  void get_words(std::span<std::uint64_t> out);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Latch an application-level validation failure.
  void fail() { ok_ = false; }

 private:
  bool take(std::size_t n, const char** out);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace hprng::net
