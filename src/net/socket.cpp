#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hprng::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool fill_sockaddr_un(const Endpoint& ep, sockaddr_un* sa,
                      std::string* error) {
  if (ep.path.size() >= sizeof(sa->sun_path)) {
    if (error != nullptr) {
      *error = "unix path too long (" + std::to_string(ep.path.size()) +
               " >= " + std::to_string(sizeof(sa->sun_path)) + "): " + ep.path;
    }
    return false;
  }
  std::memset(sa, 0, sizeof(*sa));
  sa->sun_family = AF_UNIX;
  std::memcpy(sa->sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

bool fill_sockaddr_in(const Endpoint& ep, sockaddr_in* sa,
                      std::string* error) {
  std::memset(sa, 0, sizeof(*sa));
  sa->sin_family = AF_INET;
  sa->sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (inet_pton(AF_INET, host.c_str(), &sa->sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 host: " + ep.host;
    return false;
  }
  return true;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::parse(const std::string& text,
                                        std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<Endpoint> {
    if (error != nullptr) {
      *error = "bad endpoint `" + text + "`: " + why +
               " (want unix:PATH or tcp:HOST:PORT)";
    }
    return std::nullopt;
  };
  Endpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = text.substr(5);
    if (ep.path.empty()) return fail("empty path");
    return ep;
  }
  if (text.rfind("tcp:", 0) == 0) {
    ep.kind = Kind::kTcp;
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) return fail("missing port");
    ep.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty()) return fail("empty port");
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      return fail("bad port");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  return fail("unknown scheme");
}

bool set_nonblocking(int fd, std::string* error) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error != nullptr) *error = errno_text("fcntl");
    return false;
  }
  return true;
}

int listen_on(const Endpoint& ep, Endpoint* resolved, std::string* error) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un sa{};
    if (!fill_sockaddr_un(ep, &sa, error)) return -1;
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = errno_text("socket");
      return -1;
    }
    ::unlink(ep.path.c_str());  // stale socket from a previous run
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      if (error != nullptr) *error = errno_text(("bind " + ep.path).c_str());
      close_fd(fd);
      return -1;
    }
  } else {
    sockaddr_in sa{};
    if (!fill_sockaddr_in(ep, &sa, error)) return -1;
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = errno_text("socket");
      return -1;
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      if (error != nullptr) {
        *error = errno_text(("bind " + ep.to_string()).c_str());
      }
      close_fd(fd);
      return -1;
    }
  }
  if (listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_text("listen");
    close_fd(fd);
    return -1;
  }
  if (resolved != nullptr) {
    *resolved = ep;
    if (ep.kind == Endpoint::Kind::kTcp) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        resolved->port = ntohs(bound.sin_port);
      }
    }
  }
  return fd;
}

int dial(const Endpoint& ep, std::string* error) {
  int fd = -1;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un sa{};
    if (!fill_sockaddr_un(ep, &sa, error)) return -1;
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = errno_text("socket");
      return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      if (error != nullptr) {
        *error = errno_text(("connect " + ep.to_string()).c_str());
      }
      close_fd(fd);
      return -1;
    }
  } else {
    sockaddr_in sa{};
    if (!fill_sockaddr_in(ep, &sa, error)) return -1;
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = errno_text("socket");
      return -1;
    }
    if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
      if (error != nullptr) {
        *error = errno_text(("connect " + ep.to_string()).c_str());
      }
      close_fd(fd);
      return -1;
    }
  }
  return fd;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace hprng::net
