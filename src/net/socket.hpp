#pragma once

// POSIX socket plumbing shared by NetServer and NetClient
// (docs/NETWORK.md §5): endpoint parsing, listen/dial, non-blocking mode.
// Two transports, one address grammar:
//
//   unix:PATH            stream Unix-domain socket at PATH
//   tcp:HOST:PORT        TCP over IPv4 (PORT 0 = kernel-assigned; the
//                        resolved endpoint reports the real port)
//
// Everything returns errors by value (false/-1 + *error) — the net layer
// treats socket failure as weather, never as a reason to abort.

#include <cstdint>
#include <optional>
#include <string>

namespace hprng::net {

/// A parsed listen/connect address.
struct Endpoint {
  enum class Kind { kTcp, kUnix };
  Kind kind = Kind::kUnix;
  std::string path;         ///< unix: filesystem path
  std::string host;         ///< tcp: dotted quad or "localhost"
  std::uint16_t port = 0;   ///< tcp: 0 = kernel-assigned on listen

  /// Canonical text form ("unix:/run/x.sock", "tcp:127.0.0.1:4700").
  [[nodiscard]] std::string to_string() const;

  /// Parse the grammar above; nullopt (+ *error) on malformed input.
  static std::optional<Endpoint> parse(const std::string& text,
                                       std::string* error = nullptr);
};

/// Put `fd` in non-blocking mode. False on fcntl failure.
bool set_nonblocking(int fd, std::string* error = nullptr);

/// Bind + listen on `ep`. Unix sockets unlink a stale path first; TCP
/// sets SO_REUSEADDR. On success returns the fd and rewrites *resolved
/// (when non-null) with the bound endpoint — for tcp:*:0 that carries the
/// kernel-assigned port back to the caller. -1 + *error on failure.
int listen_on(const Endpoint& ep, Endpoint* resolved = nullptr,
              std::string* error = nullptr);

/// Blocking connect to `ep`; returns the connected fd or -1 + *error.
int dial(const Endpoint& ep, std::string* error = nullptr);

/// close() wrapper that tolerates -1 (so teardown paths stay branch-free).
void close_fd(int fd);

}  // namespace hprng::net
