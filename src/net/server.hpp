#pragma once

// net::NetServer — RNG-as-a-service over the wire (docs/NETWORK.md).
//
// A poll()-driven event loop accepts TCP / Unix-domain connections and
// speaks the frame protocol of net/frame.hpp, mapping every op 1:1 onto
// serve::RngService: kLease → try_open_session, kFill → Session::
// fill_async (the request lands on the service's existing bounded MPMC
// worker queue — the wire adds no second queue, so the serve layer's
// block/reject/shed admission policy IS the network backpressure policy),
// kAdopt → adopt_session / the orphan table, kCkpt → checkpoint.
//
// Threading: one event-loop thread owns every connection (read buffers,
// write buffers, the lease→Session maps); `completer_threads` completion
// threads wait on fill Tickets — the only blocking step — and hand the
// encoded kFillAck back to the loop through the server mutex plus a
// self-pipe wakeup. All session open/release/adopt calls happen on the
// loop thread, which is what makes kCkpt safe to run inline (RngService::
// checkpoint demands no concurrent lease churn).
//
// Disconnect semantics (docs/NETWORK.md §6): a connection that drops
// without releasing its leases orphans them — the streams stay live and a
// later connection re-claims them with kAdopt, which is how a client
// rides a reconnect (or a server rolling restart, where restore() makes
// every checkpointed lease adoptable) without losing its substream.
//
// Fault sites (docs/FAULTS.md): kNetAccept per accepted connection,
// kNetRead per readable event, kNetWrite per write flush. A kFail outcome
// drops the connection — exactly the torn-read / dead-peer weather the
// chaos suite replays deterministically.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "quality/quality.hpp"
#include "serve/service.hpp"

namespace hprng::net {

/// Pre-resolve the full `hprng.net.*` catalogue (server and client
/// instruments; docs/OBSERVABILITY.md) so registry snapshots are complete
/// before traffic. NetServer / NetClient call this on attach.
void register_catalogue(obs::MetricsRegistry& registry);

struct ServerOptions {
  /// Endpoints to listen on (unix:PATH / tcp:HOST:PORT). At least one;
  /// all of them serve the same RngService.
  std::vector<std::string> listen;

  /// Per-request word cap; larger kFill asks are rejected kBadRequest.
  std::size_t max_fill_words = kMaxFillWords;

  /// Per-connection in-flight fill window. The (N+1)th concurrent fill on
  /// one connection is shed with kError/kBackpressure instead of queueing
  /// — protocol-level backpressure in front of the service queue's own
  /// admission policy.
  std::size_t max_pending_fills = 64;

  /// Threads waiting on fill Tickets (each blocks on one fill at a time;
  /// size to the expected concurrent-fill fan-in, not to client count).
  int completer_threads = 2;

  /// Optional deterministic fault injection at the net sites; not owned.
  fault::Injector* injector = nullptr;

  /// Optional quality scrubber whose report the kQuality op serves; not
  /// owned, must outlive the server. Absent → kQualityAck with present=0
  /// (docs/NETWORK.md §3.8).
  quality::QualityScrubber* scrubber = nullptr;
};

class NetServer {
 public:
  /// Binds every endpoint and starts the loop + completer threads. On any
  /// listen failure nothing runs: ok() is false and error() explains.
  /// The service must outlive the server; stop the server first.
  NetServer(serve::RngService& service, ServerOptions opts,
            obs::MetricsRegistry* metrics = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::string error() const { return error_; }

  /// Resolved listen endpoints (tcp:*:0 reports the kernel port).
  [[nodiscard]] std::vector<std::string> endpoints() const;

  /// Stop accepting, settle every in-flight fill, flush what can be
  /// flushed, close all connections and join the threads. Idempotent.
  void stop();

  /// Graceful-restart drain (docs/NETWORK.md §8): stop accepting AND stop
  /// reading — requests already on the wire stay unread (so they are
  /// never served, and the peer's retry-after-EOF is bit-exact) — while
  /// in-flight fills settle and their replies flush. Poll quiescent()
  /// until true, then stop(). This ordering is what makes serve_net's
  /// checkpoint-shutdown-restore cycle lossless: no fill is ever both
  /// served and unreplied.
  void begin_drain();

  /// True when no fill is in flight and every reply has hit the socket.
  [[nodiscard]] bool quiescent() const;

  /// Ground-truth wire accounting (exact at quiescent fences).
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t disconnects = 0;
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t bytes_rx = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t frame_errors = 0;     ///< kBad decodes (framing/CRC)
    std::uint64_t protocol_errors = 0;  ///< kError replies sent
    std::uint64_t fills = 0;            ///< kFill frames accepted
    std::uint64_t fills_ok = 0;
    std::uint64_t fills_rejected = 0;   ///< non-kOk statuses + shed window
    std::uint64_t leases_opened = 0;
    std::uint64_t leases_adopted = 0;
    std::uint64_t leases_released = 0;
    std::uint64_t checkpoints = 0;
    std::size_t connections = 0;        ///< currently open
    std::size_t orphaned = 0;           ///< leases parked for re-adoption
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string rbuf;
    std::string wbuf;
    bool hello_done = false;
    bool closing = false;  ///< flush wbuf, then close
    std::size_t pending_fills = 0;
    std::map<std::uint64_t, serve::Session> sessions;  ///< by lease id
  };

  struct PendingFill {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::uint64_t lease_id = 0;
    serve::Ticket ticket;
    std::shared_ptr<std::vector<std::uint64_t>> buf;
  };

  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* disconnects = nullptr;
    obs::Counter* frames_rx = nullptr;
    obs::Counter* frames_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* frame_errors = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* fills_ok = nullptr;
    obs::Counter* fills_rejected = nullptr;
    obs::Counter* leases_opened = nullptr;
    obs::Counter* leases_adopted = nullptr;
    obs::Counter* leases_released = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Gauge* connections = nullptr;
    obs::Gauge* orphaned = nullptr;
    obs::Histogram* fill_seconds = nullptr;
  };

  void loop();
  void completer_loop();
  void wake();
  void accept_ready(std::size_t listener_idx);       // mu_ held
  void read_ready(const std::shared_ptr<Conn>& c);   // mu_ held
  void write_ready(const std::shared_ptr<Conn>& c);  // mu_ held
  void drop(const std::shared_ptr<Conn>& c);         // mu_ held
  void handle_frame(const std::shared_ptr<Conn>& c,
                    const Frame& frame);             // mu_ held
  void send(const std::shared_ptr<Conn>& c, const Frame& frame);  // mu_ held
  void send_error(const std::shared_ptr<Conn>& c, std::uint64_t request_id,
                  ErrCode code, const std::string& message);      // mu_ held

  serve::RngService& service_;
  ServerOptions opts_;
  obs::MetricsRegistry* metrics_;
  Instruments ins_;

  bool ok_ = false;
  std::string error_;

  struct Listener {
    int fd = -1;
    Endpoint resolved;
  };
  std::vector<Listener> listeners_;
  int wake_pipe_[2] = {-1, -1};

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::map<std::uint64_t, serve::Session> orphans_;  ///< by lease id
  std::uint64_t next_conn_id_ = 1;
  Stats stats_;

  std::mutex cq_mu_;
  std::condition_variable cq_cv_;
  std::deque<PendingFill> completer_queue_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  int inflight_fills_ = 0;  ///< accepted, reply not yet queued (mu_)
  std::thread loop_thread_;
  std::vector<std::thread> completers_;
};

}  // namespace hprng::net
