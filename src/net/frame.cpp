#include "net/frame.hpp"

#include <cstring>

#include "state/snapshot.hpp"  // state::crc32 — one CRC for files and wire
#include "util/check.hpp"

namespace hprng::net {

namespace {

void append_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void append_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

const char* to_string(Op op) {
  switch (op) {
    case Op::kHello: return "hello";
    case Op::kHelloAck: return "hello_ack";
    case Op::kLease: return "lease";
    case Op::kLeaseAck: return "lease_ack";
    case Op::kFill: return "fill";
    case Op::kFillAck: return "fill_ack";
    case Op::kRelease: return "release";
    case Op::kReleaseAck: return "release_ack";
    case Op::kAdopt: return "adopt";
    case Op::kAdoptAck: return "adopt_ack";
    case Op::kStat: return "stat";
    case Op::kStatAck: return "stat_ack";
    case Op::kError: return "error";
    case Op::kCkpt: return "ckpt";
    case Op::kCkptAck: return "ckpt_ack";
    case Op::kAdoptables: return "adoptables";
    case Op::kAdoptablesAck: return "adoptables_ack";
    case Op::kQuality: return "quality";
    case Op::kQualityAck: return "quality_ack";
  }
  return "?";
}

bool known_op(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(Op::kHello) &&
         raw <= static_cast<std::uint8_t>(Op::kQualityAck);
}

const char* to_string(ErrCode code) {
  switch (code) {
    case ErrCode::kBadFrame: return "bad_frame";
    case ErrCode::kVersionMismatch: return "version_mismatch";
    case ErrCode::kBadRequest: return "bad_request";
    case ErrCode::kUnknownLease: return "unknown_lease";
    case ErrCode::kLeaseExhausted: return "lease_exhausted";
    case ErrCode::kBackpressure: return "backpressure";
    case ErrCode::kClosing: return "closing";
  }
  return "?";
}

bool fatal(ErrCode code) {
  switch (code) {
    case ErrCode::kBadFrame:
    case ErrCode::kVersionMismatch:
    case ErrCode::kBadRequest:
      return true;
    case ErrCode::kUnknownLease:
    case ErrCode::kLeaseExhausted:
    case ErrCode::kBackpressure:
    case ErrCode::kClosing:
      return false;
  }
  return true;
}

std::string encode(const Frame& frame) {
  HPRNG_CHECK(frame.payload.size() <= kMaxFrameLen - kMinFrameLen,
              "net::encode: payload exceeds kMaxFrameLen");
  const std::uint32_t len =
      static_cast<std::uint32_t>(kHeaderRest + frame.payload.size() + 4);
  std::string out;
  out.reserve(4 + len);
  append_u32(out, len);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.op));
  out.push_back(static_cast<char>(frame.flags & 0xFF));
  out.push_back(static_cast<char>((frame.flags >> 8) & 0xFF));
  append_u64(out, frame.request_id);
  out.append(frame.payload);
  const std::uint32_t crc = state::crc32(
      std::string_view(out.data() + 4, kHeaderRest + frame.payload.size()));
  append_u32(out, crc);
  return out;
}

Decode decode(std::string_view buf, Frame* out, std::size_t* consumed,
              std::string* error) {
  const auto bad = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return Decode::kBad;
  };
  if (buf.size() < 4) return Decode::kNeedMore;
  const std::uint32_t len = read_u32(buf.data());
  if (len > kMaxFrameLen) {
    return bad("frame length " + std::to_string(len) + " exceeds cap " +
               std::to_string(kMaxFrameLen));
  }
  if (len < kMinFrameLen) {
    return bad("frame length " + std::to_string(len) + " below minimum " +
               std::to_string(kMinFrameLen));
  }
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return Decode::kNeedMore;
  const std::size_t covered = len - 4;  // version..payload
  const std::uint32_t want = read_u32(buf.data() + 4 + covered);
  const std::uint32_t got =
      state::crc32(std::string_view(buf.data() + 4, covered));
  if (want != got) return bad("frame CRC mismatch");
  out->version = static_cast<std::uint8_t>(buf[4]);
  out->op = static_cast<Op>(static_cast<std::uint8_t>(buf[5]));
  out->flags = static_cast<std::uint16_t>(
      static_cast<unsigned char>(buf[6]) |
      (static_cast<unsigned char>(buf[7]) << 8));
  out->request_id = read_u64(buf.data() + 8);
  out->payload.assign(buf.data() + 4 + kHeaderRest, covered - kHeaderRest);
  *consumed = 4 + static_cast<std::size_t>(len);
  return Decode::kFrame;
}

void WireWriter::put_u32(std::uint32_t v) { append_u32(buf_, v); }

void WireWriter::put_u64(std::uint64_t v) { append_u64(buf_, v); }

void WireWriter::put_str(std::string_view s) {
  HPRNG_CHECK(s.size() <= kMaxFrameLen, "net::WireWriter: string too long");
  append_u32(buf_, static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::put_words(std::span<const std::uint64_t> words) {
  buf_.reserve(buf_.size() + words.size() * 8);
  for (const std::uint64_t w : words) append_u64(buf_, w);
}

bool WireReader::take(std::size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t WireReader::get_u8() {
  const char* p = nullptr;
  if (!take(1, &p)) return 0;
  return static_cast<std::uint8_t>(*p);
}

std::uint32_t WireReader::get_u32() {
  const char* p = nullptr;
  if (!take(4, &p)) return 0;
  return read_u32(p);
}

std::uint64_t WireReader::get_u64() {
  const char* p = nullptr;
  if (!take(8, &p)) return 0;
  return read_u64(p);
}

std::string WireReader::get_str() {
  const std::uint32_t n = get_u32();
  const char* p = nullptr;
  if (!take(n, &p)) return {};
  return std::string(p, n);
}

void WireReader::get_words(std::span<std::uint64_t> out) {
  const char* p = nullptr;
  if (!take(out.size() * 8, &p)) {
    for (std::uint64_t& w : out) w = 0;
    return;
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = read_u64(p + 8 * i);
}

}  // namespace hprng::net
