#pragma once

// net::NetClient — the client half of RNG-as-a-service (docs/NETWORK.md).
//
// A NetClient owns one connection to a NetServer and exposes the protocol
// as typed calls: lease/adopt/release, synchronous fill, pipelined
// fill_submit/fill_wait, stat, checkpoint. The load-bearing feature is
// reconnection: the client remembers every lease id it holds, and when
// the connection dies (server restart, injected net fault, plain TCP
// reset) it transparently re-dials, re-runs the hello handshake, re-adopts
// its leases (the server parked them as orphans on disconnect, or restored
// them from a checkpoint after a rolling restart) and retries the
// synchronous call that observed the failure. Combined with serve_net's
// drain-then-checkpoint shutdown this makes a rolling restart invisible:
// the retried fill continues the substream bit-exactly.
//
// Retry scope: only the synchronous fill()/lease()/stat()/... calls retry
// transparently, and only when the failure arrived *before* a reply —
// after an EOF with no FillAck the graceful-shutdown contract guarantees
// the fill was not served, so re-issuing cannot skip words. Pipelined
// fills (fill_submit) do NOT retry on their own: with several requests in
// flight the client cannot know which were served, so fill_wait surfaces
// kClosed and the caller decides (docs/NETWORK.md §6).
//
// Thread safety: one mutex serialises the connection; concurrent callers
// interleave whole requests. Pipelining depth comes from fill_submit, not
// from concurrent threads.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "quality/quality.hpp"
#include "serve/options.hpp"

namespace hprng::net {

struct ClientOptions {
  /// Server endpoint (unix:PATH / tcp:HOST:PORT).
  std::string endpoint;

  /// Client name sent in the hello (diagnostic only).
  std::string name = "hprng-client";

  /// Per-request wall deadline (send + await reply). A request that
  /// misses it closes the connection — a late straggler reply would
  /// otherwise desynchronise the request/reply stream.
  std::chrono::milliseconds timeout{5000};

  /// Reconnect attempts per operation before giving up.
  int max_reconnects = 8;

  /// Base reconnect backoff, doubled per attempt (capped at 500ms) —
  /// rides out the restart window of a rolling restart.
  std::chrono::milliseconds reconnect_backoff{20};

  /// Re-adopt held leases automatically after a reconnect.
  bool auto_adopt = true;

  /// Tenant id sent in every lease request (docs/QOS.md §2). Leases this
  /// client opens bill against that tenant's rate/quota policy; 0 is the
  /// default tenant (the pre-QoS behaviour).
  std::uint64_t tenant = 0;

  /// Optional `hprng.net.client.*` instruments; not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What the server said in its hello ack.
struct ServerInfo {
  std::uint32_t proto = 0;
  std::string backend;
  std::uint32_t num_shards = 0;
  std::uint64_t max_fill_words = 0;
};

/// kStatAck image — service + wire-layer counters (docs/NETWORK.md §3.6).
struct NetStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t closed = 0;
  std::uint64_t failed = 0;
  std::uint64_t numbers_served = 0;
  std::uint64_t active_leases = 0;
  std::uint64_t healthy_shards = 0;
  std::uint64_t adoptable = 0;
  std::uint64_t connections = 0;
  std::uint64_t rejected_quota = 0;  ///< v2 field; 0 from a v1 server
};

class NetClient {
 public:
  explicit NetClient(ClientOptions opts);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Dial + hello. Called lazily by every operation; explicit connect()
  /// is for checking reachability up front.
  bool connect(std::string* error = nullptr);
  [[nodiscard]] bool connected() const;

  /// Close the connection (held lease ids are remembered — a later call
  /// reconnects and re-adopts them).
  void close();

  /// Valid after the first successful connect.
  [[nodiscard]] ServerInfo server_info() const;

  // -- Leases ---------------------------------------------------------------

  /// Open a fresh lease; nullopt + *error on exhaustion or failure.
  std::optional<std::uint64_t> lease(std::string* error = nullptr);
  /// Open with shard affinity (shard_key % num_shards).
  std::optional<std::uint64_t> lease_on(std::uint64_t shard_key,
                                        std::string* error = nullptr);
  /// Return a lease to the pool (also forgets it locally).
  bool release(std::uint64_t lease_id, std::string* error = nullptr);
  /// Re-claim an orphaned / restored lease by id.
  bool adopt(std::uint64_t lease_id, std::string* error = nullptr);
  /// Lease ids the server would let us adopt right now.
  std::vector<std::uint64_t> adoptables(std::string* error = nullptr);
  /// Lease ids this client currently holds (local book-keeping).
  [[nodiscard]] std::vector<std::uint64_t> held_leases() const;

  // -- Fills ----------------------------------------------------------------

  /// Synchronous fill with transparent reconnect + re-adopt + retry.
  /// Returns the terminal serve::Status; non-kOk leaves `out` untouched.
  serve::Status fill(std::uint64_t lease_id, std::span<std::uint64_t> out,
                     std::string* error = nullptr);

  /// Pipelined submit: sends the kFill and returns its request id without
  /// waiting (0 on send failure). Up to the server's per-connection
  /// window may be in flight; collect each with fill_wait.
  std::uint64_t fill_submit(std::uint64_t lease_id, std::uint32_t words);

  /// Await the reply for a fill_submit id. No transparent retry: a dead
  /// connection surfaces kClosed and the caller re-submits (the server's
  /// orphan table has kept the lease alive).
  serve::Status fill_wait(std::uint64_t request_id,
                          std::span<std::uint64_t> out,
                          std::string* error = nullptr);

  // -- Control --------------------------------------------------------------

  std::optional<NetStats> stat(std::string* error = nullptr);
  /// Ask the server to checkpoint itself to a server-side path.
  bool checkpoint(const std::string& path, std::string* error = nullptr);
  /// Fetch the server's quality-scrubber report (docs/NETWORK.md §3.8).
  /// Doubles travel as IEEE-754 bit images, so the returned report is
  /// byte-identical to the server-side QualityScrubber::report().
  /// nullopt with *error = "no scrubber" when none is attached.
  std::optional<quality::QualityReport> quality(std::string* error = nullptr);

  struct Stats {
    std::uint64_t connects = 0;
    std::uint64_t reconnects = 0;  ///< connects after the first
    std::uint64_t requests = 0;
    std::uint64_t retries = 0;     ///< synchronous ops re-issued
    std::uint64_t timeouts = 0;
    std::uint64_t adoptions = 0;   ///< successful kAdopt acks
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Instruments {
    obs::Counter* connects = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* adoptions = nullptr;
  };

  /// Dial + hello + (optionally) re-adopt held leases. mu_ held.
  bool ensure_connected(std::string* error);
  /// One dial + hello, no retry. mu_ held.
  bool connect_once(std::string* error);
  void disconnect();  // mu_ held
  /// Write a whole encoded frame; false (+ disconnect) on error. mu_ held.
  bool send_frame(const Frame& frame);
  /// Pump the socket until the reply for `request_id` arrives or
  /// `deadline` passes. nullopt = connection lost or deadline (the
  /// connection is closed either way; *timed_out says which). mu_ held.
  std::optional<Frame> await(std::uint64_t request_id,
                             std::chrono::steady_clock::time_point deadline,
                             bool* timed_out);
  /// send + await for one synchronous request. mu_ held.
  std::optional<Frame> roundtrip(Op op, std::string payload,
                                 bool* timed_out);
  /// Re-adopt every held lease on a fresh connection. mu_ held.
  bool readopt_leases(std::string* error);

  ClientOptions opts_;
  Endpoint endpoint_;
  bool endpoint_ok_ = false;
  std::string endpoint_error_;
  Instruments ins_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool ever_connected_ = false;
  std::string rbuf_;
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, Frame> replies_;  ///< out-of-order arrivals
  std::set<std::uint64_t> held_;            ///< lease ids we own
  ServerInfo info_;
  Stats stats_;
};

/// A fixed-size pool of NetClients over one endpoint — connection pooling
/// for multi-threaded callers (each get() hands out clients round-robin;
/// NetClient serialises internally, so striping across the pool is what
/// buys parallel wire throughput).
class ClientPool {
 public:
  ClientPool(ClientOptions opts, std::size_t size);

  [[nodiscard]] std::size_t size() const { return clients_.size(); }

  /// Round-robin client handle (never null; the pool owns it).
  NetClient* get();
  /// Direct index access (stable for a client's lifetime).
  NetClient* at(std::size_t i) { return clients_[i].get(); }

 private:
  std::vector<std::unique_ptr<NetClient>> clients_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace hprng::net
