#include "net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <thread>

namespace hprng::net {

namespace {

void set_error(std::string* error, const std::string& text) {
  if (error != nullptr) *error = text;
}

serve::Status status_from_wire(std::uint32_t raw) {
  switch (raw) {
    case 0: return serve::Status::kOk;
    case 1: return serve::Status::kRejected;
    case 2: return serve::Status::kShed;
    case 3: return serve::Status::kTimeout;
    case 4: return serve::Status::kClosed;
    case 6: return serve::Status::kRejectedQuota;
    default: return serve::Status::kFailed;
  }
}

/// Protocol errors that arrive instead of a FillAck, mapped onto the
/// serve-layer status a local caller would have seen.
serve::Status status_from_err(ErrCode code) {
  switch (code) {
    case ErrCode::kBackpressure: return serve::Status::kRejected;
    case ErrCode::kClosing: return serve::Status::kClosed;
    default: return serve::Status::kFailed;
  }
}

}  // namespace

NetClient::NetClient(ClientOptions opts) : opts_(std::move(opts)) {
  const auto ep = Endpoint::parse(opts_.endpoint, &endpoint_error_);
  if (ep.has_value()) {
    endpoint_ = *ep;
    endpoint_ok_ = true;
  }
  if (opts_.metrics != nullptr) {
    ins_.connects = &opts_.metrics->counter("hprng.net.client.connects");
    ins_.reconnects = &opts_.metrics->counter("hprng.net.client.reconnects");
    ins_.requests = &opts_.metrics->counter("hprng.net.client.requests");
    ins_.timeouts = &opts_.metrics->counter("hprng.net.client.timeouts");
    ins_.adoptions = &opts_.metrics->counter("hprng.net.client.adoptions");
  }
}

NetClient::~NetClient() {
  std::lock_guard<std::mutex> lk(mu_);
  disconnect();
}

bool NetClient::connect(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  return ensure_connected(error);
}

bool NetClient::connected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fd_ >= 0;
}

void NetClient::close() {
  std::lock_guard<std::mutex> lk(mu_);
  disconnect();
}

ServerInfo NetClient::server_info() const {
  std::lock_guard<std::mutex> lk(mu_);
  return info_;
}

std::vector<std::uint64_t> NetClient::held_leases() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {held_.begin(), held_.end()};
}

NetClient::Stats NetClient::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void NetClient::disconnect() {
  close_fd(fd_);
  fd_ = -1;
  rbuf_.clear();
  replies_.clear();  // stragglers from the dead connection are meaningless
}

bool NetClient::connect_once(std::string* error) {
  if (!endpoint_ok_) {
    set_error(error, endpoint_error_);
    return false;
  }
  std::string err;
  const int fd = dial(endpoint_, &err);
  if (fd < 0) {
    set_error(error, err);
    return false;
  }
  fd_ = fd;
  WireWriter w;
  w.put_u32(kHelloMagic);
  w.put_u32(kWireVersion);
  w.put_str(opts_.name);
  Frame hello;
  hello.op = Op::kHello;
  hello.request_id = next_request_id_++;
  hello.payload = w.take();
  if (!send_frame(hello)) {
    set_error(error, "hello send failed");
    return false;
  }
  bool timed_out = false;
  const auto reply =
      await(hello.request_id,
            std::chrono::steady_clock::now() + opts_.timeout, &timed_out);
  if (!reply.has_value()) {
    set_error(error, timed_out ? "hello timed out" : "hello: connection lost");
    return false;
  }
  if (reply->op != Op::kHelloAck) {
    WireReader r(reply->payload);
    const auto code = static_cast<ErrCode>(r.get_u32());
    set_error(error, std::string("hello rejected: ") + to_string(code) +
                         ": " + r.get_str());
    disconnect();
    return false;
  }
  WireReader r(reply->payload);
  info_.proto = r.get_u32();
  info_.backend = r.get_str();
  info_.num_shards = r.get_u32();
  info_.max_fill_words = r.get_u64();
  if (!r.ok()) {
    set_error(error, "malformed hello ack");
    disconnect();
    return false;
  }
  ++stats_.connects;
  if (ins_.connects != nullptr) ins_.connects->add();
  if (ever_connected_) {
    ++stats_.reconnects;
    if (ins_.reconnects != nullptr) ins_.reconnects->add();
  }
  ever_connected_ = true;
  return true;
}

bool NetClient::readopt_leases(std::string* error) {
  for (const std::uint64_t lease_id : held_) {
    WireWriter w;
    w.put_u64(lease_id);
    Frame req;
    req.op = Op::kAdopt;
    req.request_id = next_request_id_++;
    req.payload = w.take();
    if (!send_frame(req)) {
      set_error(error, "re-adopt send failed");
      return false;
    }
    bool timed_out = false;
    const auto reply =
        await(req.request_id,
              std::chrono::steady_clock::now() + opts_.timeout, &timed_out);
    if (!reply.has_value() || reply->op != Op::kAdoptAck) {
      set_error(error,
                "re-adopt of lease " + std::to_string(lease_id) + " failed");
      disconnect();
      return false;
    }
    WireReader r(reply->payload);
    (void)r.get_u64();
    if (r.get_u8() == 0 || !r.ok()) {
      set_error(error, "server refused re-adopt of lease " +
                           std::to_string(lease_id));
      disconnect();
      return false;
    }
    ++stats_.adoptions;
    if (ins_.adoptions != nullptr) ins_.adoptions->add();
  }
  return true;
}

bool NetClient::ensure_connected(std::string* error) {
  if (fd_ >= 0) return true;
  std::string err;
  auto backoff = opts_.reconnect_backoff;
  const int attempts = std::max(1, opts_.max_reconnects);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
    }
    if (!connect_once(&err)) {
      disconnect();
      continue;
    }
    if (opts_.auto_adopt && !held_.empty() && !readopt_leases(&err)) {
      continue;  // readopt_leases disconnected already
    }
    return true;
  }
  set_error(error, err.empty() ? "connect failed" : err);
  return false;
}

bool NetClient::send_frame(const Frame& frame) {
  const std::string bytes = encode(frame);
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that vanished mid-send is EPIPE, not SIGPIPE.
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      disconnect();
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ++stats_.requests;
  if (ins_.requests != nullptr) ins_.requests->add();
  return true;
}

std::optional<Frame> NetClient::await(
    std::uint64_t request_id, std::chrono::steady_clock::time_point deadline,
    bool* timed_out) {
  if (timed_out != nullptr) *timed_out = false;
  for (;;) {
    const auto it = replies_.find(request_id);
    if (it != replies_.end()) {
      Frame frame = std::move(it->second);
      replies_.erase(it);
      return frame;
    }
    if (fd_ < 0) return std::nullopt;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      // A straggler reply after a timeout would answer the wrong request;
      // the only safe recovery is a fresh connection.
      if (timed_out != nullptr) *timed_out = true;
      ++stats_.timeouts;
      if (ins_.timeouts != nullptr) ins_.timeouts->add();
      disconnect();
      return std::nullopt;
    }
    const auto wait_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count();
    pollfd pfd{fd_, POLLIN, 0};
    const int rc =
        poll(&pfd, 1, static_cast<int>(std::min<long long>(wait_ms, 100)));
    if (rc < 0 && errno != EINTR) {
      disconnect();
      return std::nullopt;
    }
    if (rc <= 0) continue;
    char tmp[1 << 16];
    const ssize_t n = read(fd_, tmp, sizeof(tmp));
    if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
      disconnect();
      return std::nullopt;
    }
    if (n > 0) rbuf_.append(tmp, static_cast<std::size_t>(n));
    for (;;) {
      Frame frame;
      std::size_t consumed = 0;
      std::string err;
      const Decode dr = decode(rbuf_, &frame, &consumed, &err);
      if (dr == Decode::kNeedMore) break;
      if (dr == Decode::kBad) {  // a damaged server frame — give up
        disconnect();
        return std::nullopt;
      }
      rbuf_.erase(0, consumed);
      replies_[frame.request_id] = std::move(frame);
    }
  }
}

std::optional<Frame> NetClient::roundtrip(Op op, std::string payload,
                                          bool* timed_out) {
  Frame req;
  req.op = op;
  req.request_id = next_request_id_++;
  req.payload = std::move(payload);
  if (!send_frame(req)) return std::nullopt;
  return await(req.request_id, std::chrono::steady_clock::now() + opts_.timeout,
               timed_out);
}

std::optional<std::uint64_t> NetClient::lease(std::string* error) {
  WireWriter w;
  w.put_u8(0);
  w.put_u64(0);
  w.put_u64(opts_.tenant);  // v2 lease payload (docs/NETWORK.md §3.2)
  std::lock_guard<std::mutex> lk(mu_);
  for (int attempt = 0;; ++attempt) {
    if (!ensure_connected(error)) return std::nullopt;
    bool timed_out = false;
    const auto reply = roundtrip(Op::kLease, w.str(), &timed_out);
    if (!reply.has_value()) {
      if (!timed_out && attempt < opts_.max_reconnects) {
        ++stats_.retries;
        continue;  // connection lost before a reply — safe to re-issue
      }
      set_error(error, timed_out ? "lease timed out" : "connection lost");
      return std::nullopt;
    }
    if (reply->op != Op::kLeaseAck) {
      WireReader r(reply->payload);
      const auto code = static_cast<ErrCode>(r.get_u32());
      set_error(error, std::string(to_string(code)) + ": " + r.get_str());
      return std::nullopt;
    }
    WireReader r(reply->payload);
    const std::uint64_t id = r.get_u64();
    if (!r.ok()) {
      set_error(error, "malformed lease ack");
      return std::nullopt;
    }
    held_.insert(id);
    return id;
  }
}

std::optional<std::uint64_t> NetClient::lease_on(std::uint64_t shard_key,
                                                 std::string* error) {
  WireWriter w;
  w.put_u8(1);
  w.put_u64(shard_key);
  w.put_u64(opts_.tenant);  // v2 lease payload (docs/NETWORK.md §3.2)
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return std::nullopt;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kLease, w.str(), &timed_out);
  if (!reply.has_value()) {
    set_error(error, timed_out ? "lease timed out" : "connection lost");
    return std::nullopt;
  }
  if (reply->op != Op::kLeaseAck) {
    WireReader r(reply->payload);
    const auto code = static_cast<ErrCode>(r.get_u32());
    set_error(error, std::string(to_string(code)) + ": " + r.get_str());
    return std::nullopt;
  }
  WireReader r(reply->payload);
  const std::uint64_t id = r.get_u64();
  if (!r.ok()) {
    set_error(error, "malformed lease ack");
    return std::nullopt;
  }
  held_.insert(id);
  return id;
}

bool NetClient::release(std::uint64_t lease_id, std::string* error) {
  WireWriter w;
  w.put_u64(lease_id);
  std::lock_guard<std::mutex> lk(mu_);
  held_.erase(lease_id);  // forget locally even if the wire call fails
  if (!ensure_connected(error)) return false;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kRelease, w.str(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kReleaseAck) {
    set_error(error, "release failed");
    return false;
  }
  WireReader r(reply->payload);
  (void)r.get_u64();
  return r.get_u8() != 0 && r.ok();
}

bool NetClient::adopt(std::uint64_t lease_id, std::string* error) {
  WireWriter w;
  w.put_u64(lease_id);
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return false;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kAdopt, w.str(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kAdoptAck) {
    set_error(error, "adopt failed");
    return false;
  }
  WireReader r(reply->payload);
  (void)r.get_u64();
  const bool ok = r.get_u8() != 0 && r.ok();
  if (ok) {
    held_.insert(lease_id);
    ++stats_.adoptions;
    if (ins_.adoptions != nullptr) ins_.adoptions->add();
  } else {
    set_error(error, "server refused adopt of lease " +
                         std::to_string(lease_id));
  }
  return ok;
}

std::vector<std::uint64_t> NetClient::adoptables(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return {};
  bool timed_out = false;
  const auto reply = roundtrip(Op::kAdoptables, std::string(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kAdoptablesAck) {
    set_error(error, "adoptables failed");
    return {};
  }
  WireReader r(reply->payload);
  const std::uint32_t count = r.get_u32();
  std::vector<std::uint64_t> ids;
  ids.reserve(count);
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    ids.push_back(r.get_u64());
  }
  if (!r.ok()) {
    set_error(error, "malformed adoptables ack");
    return {};
  }
  return ids;
}

serve::Status NetClient::fill(std::uint64_t lease_id,
                              std::span<std::uint64_t> out,
                              std::string* error) {
  if (out.empty() || out.size() > kMaxFillWords) {
    set_error(error, "fill size out of range");
    return serve::Status::kFailed;
  }
  WireWriter w;
  w.put_u64(lease_id);
  w.put_u32(static_cast<std::uint32_t>(out.size()));
  w.put_u32(0);  // server-default fill timeout
  std::lock_guard<std::mutex> lk(mu_);
  for (int attempt = 0;; ++attempt) {
    if (!ensure_connected(error)) return serve::Status::kClosed;
    bool timed_out = false;
    const auto reply = roundtrip(Op::kFill, w.str(), &timed_out);
    if (!reply.has_value()) {
      if (timed_out) {
        set_error(error, "fill timed out");
        return serve::Status::kTimeout;
      }
      if (attempt < opts_.max_reconnects) {
        // EOF before any reply: the graceful-shutdown contract means the
        // fill was never served, so the retry continues the stream
        // bit-exactly (docs/NETWORK.md §6).
        ++stats_.retries;
        continue;
      }
      set_error(error, "connection lost");
      return serve::Status::kClosed;
    }
    if (reply->op == Op::kError) {
      WireReader r(reply->payload);
      const auto code = static_cast<ErrCode>(r.get_u32());
      set_error(error, std::string(to_string(code)) + ": " + r.get_str());
      return status_from_err(code);
    }
    if (reply->op != Op::kFillAck) {
      set_error(error, "unexpected reply op");
      return serve::Status::kFailed;
    }
    WireReader r(reply->payload);
    (void)r.get_u64();  // lease id echo
    const serve::Status status = status_from_wire(r.get_u32());
    const std::uint32_t nwords = r.get_u32();
    if (status != serve::Status::kOk) return status;
    if (nwords != out.size()) {
      set_error(error, "fill ack word-count mismatch");
      return serve::Status::kFailed;
    }
    r.get_words(out);
    if (!r.ok()) {
      set_error(error, "malformed fill ack");
      return serve::Status::kFailed;
    }
    return serve::Status::kOk;
  }
}

std::uint64_t NetClient::fill_submit(std::uint64_t lease_id,
                                     std::uint32_t words) {
  if (words == 0 || words > kMaxFillWords) return 0;
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(nullptr)) return 0;
  WireWriter w;
  w.put_u64(lease_id);
  w.put_u32(words);
  w.put_u32(0);
  Frame req;
  req.op = Op::kFill;
  req.request_id = next_request_id_++;
  req.payload = w.take();
  if (!send_frame(req)) return 0;
  return req.request_id;
}

serve::Status NetClient::fill_wait(std::uint64_t request_id,
                                   std::span<std::uint64_t> out,
                                   std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  bool timed_out = false;
  const auto reply = await(
      request_id, std::chrono::steady_clock::now() + opts_.timeout,
      &timed_out);
  if (!reply.has_value()) {
    set_error(error, timed_out ? "fill timed out" : "connection lost");
    return timed_out ? serve::Status::kTimeout : serve::Status::kClosed;
  }
  if (reply->op == Op::kError) {
    WireReader r(reply->payload);
    const auto code = static_cast<ErrCode>(r.get_u32());
    set_error(error, std::string(to_string(code)) + ": " + r.get_str());
    return status_from_err(code);
  }
  if (reply->op != Op::kFillAck) {
    set_error(error, "unexpected reply op");
    return serve::Status::kFailed;
  }
  WireReader r(reply->payload);
  (void)r.get_u64();
  const serve::Status status = status_from_wire(r.get_u32());
  const std::uint32_t nwords = r.get_u32();
  if (status != serve::Status::kOk) return status;
  if (nwords != out.size()) {
    set_error(error, "fill ack word-count mismatch");
    return serve::Status::kFailed;
  }
  r.get_words(out);
  if (!r.ok()) {
    set_error(error, "malformed fill ack");
    return serve::Status::kFailed;
  }
  return serve::Status::kOk;
}

std::optional<NetStats> NetClient::stat(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return std::nullopt;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kStat, std::string(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kStatAck) {
    set_error(error, "stat failed");
    return std::nullopt;
  }
  WireReader r(reply->payload);
  NetStats s;
  s.submitted = r.get_u64();
  s.completed = r.get_u64();
  s.rejected = r.get_u64();
  s.shed = r.get_u64();
  s.timed_out = r.get_u64();
  s.closed = r.get_u64();
  s.failed = r.get_u64();
  s.numbers_served = r.get_u64();
  s.active_leases = r.get_u64();
  s.healthy_shards = r.get_u64();
  s.adoptable = r.get_u64();
  s.connections = r.get_u64();
  // v2 acks append the QoS rejection total; a v1 ack simply ends here.
  if (reply->version >= 2) s.rejected_quota = r.get_u64();
  if (!r.ok()) {
    set_error(error, "malformed stat ack");
    return std::nullopt;
  }
  return s;
}

bool NetClient::checkpoint(const std::string& path, std::string* error) {
  WireWriter w;
  w.put_str(path);
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return false;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kCkpt, w.str(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kCkptAck) {
    set_error(error, "checkpoint request failed");
    return false;
  }
  WireReader r(reply->payload);
  const bool ok = r.get_u8() != 0;
  const std::string server_error = r.get_str();
  if (!ok) set_error(error, server_error);
  return ok && r.ok();
}

std::optional<quality::QualityReport> NetClient::quality(std::string* error) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!ensure_connected(error)) return std::nullopt;
  bool timed_out = false;
  const auto reply = roundtrip(Op::kQuality, std::string(), &timed_out);
  if (!reply.has_value() || reply->op != Op::kQualityAck) {
    set_error(error, "quality request failed");
    return std::nullopt;
  }
  WireReader r(reply->payload);
  if (r.get_u8() == 0) {
    if (r.ok()) set_error(error, "no scrubber");
    else set_error(error, "malformed quality ack");
    return std::nullopt;
  }
  quality::QualityReport rep;
  rep.backend = r.get_str();
  rep.resting_tier = static_cast<int>(r.get_u32());
  rep.tier = static_cast<int>(r.get_u32());
  rep.passes = r.get_u64();
  rep.words = r.get_u64();
  rep.anomalies = r.get_u64();
  rep.escalations = r.get_u64();
  rep.feed_failures = r.get_u64();
  rep.batteries = r.get_u64();
  rep.anomalous = r.get_u8() != 0;
  rep.last_battery = r.get_str();
  rep.last_passed = static_cast<int>(r.get_u32());
  rep.last_total = static_cast<int>(r.get_u32());
  rep.last_ks_d = std::bit_cast<double>(r.get_u64());
  rep.last_ks_p = std::bit_cast<double>(r.get_u64());
  rep.last_ks_valid = r.get_u8() != 0;
  const std::uint32_t nstreams = r.get_u32();
  if (!r.ok() || nstreams > 65536) {
    set_error(error, "malformed quality ack");
    return std::nullopt;
  }
  rep.streams.resize(nstreams);
  for (quality::StreamReport& s : rep.streams) {
    s.lease_id = r.get_u64();
    s.words = r.get_u64();
    s.freq_p = std::bit_cast<double>(r.get_u64());
    s.corr_p = std::bit_cast<double>(r.get_u64());
    s.adopted = r.get_u8() != 0;
  }
  const std::uint32_t nhistory = r.get_u32();
  if (!r.ok() || nhistory > 65536) {
    set_error(error, "malformed quality ack");
    return std::nullopt;
  }
  rep.history.resize(nhistory);
  for (quality::AnomalyRecord& a : rep.history) {
    a.pass = r.get_u64();
    a.tier = static_cast<int>(r.get_u32());
    a.what = r.get_str();
  }
  if (!r.ok()) {
    set_error(error, "malformed quality ack");
    return std::nullopt;
  }
  return rep;
}

ClientPool::ClientPool(ClientOptions opts, std::size_t size) {
  clients_.reserve(std::max<std::size_t>(1, size));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, size); ++i) {
    ClientOptions each = opts;
    each.name = opts.name + "#" + std::to_string(i);
    clients_.push_back(std::make_unique<NetClient>(std::move(each)));
  }
}

NetClient* ClientPool::get() {
  const std::size_t i =
      next_.fetch_add(1, std::memory_order_relaxed) % clients_.size();
  return clients_[i].get();
}

}  // namespace hprng::net
