#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "util/check.hpp"

namespace hprng::net {

namespace {

/// Wall sleep for an injected kDelay outcome (net I/O is host-side, so
/// delays are wall-clock, like the kWorker site).
void apply_delay(const fault::Outcome& outcome) {
  if (outcome.delay() && outcome.delay_seconds > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(outcome.delay_seconds));
  }
}

}  // namespace

void register_catalogue(obs::MetricsRegistry& registry) {
  registry.counter("hprng.net.accepted");
  registry.counter("hprng.net.disconnects");
  registry.counter("hprng.net.frames_rx");
  registry.counter("hprng.net.frames_tx");
  registry.counter("hprng.net.bytes_rx");
  registry.counter("hprng.net.bytes_tx");
  registry.counter("hprng.net.frame_errors");
  registry.counter("hprng.net.protocol_errors");
  registry.counter("hprng.net.fills_ok");
  registry.counter("hprng.net.fills_rejected");
  registry.counter("hprng.net.leases_opened");
  registry.counter("hprng.net.leases_adopted");
  registry.counter("hprng.net.leases_released");
  registry.counter("hprng.net.checkpoints");
  registry.gauge("hprng.net.connections");
  registry.gauge("hprng.net.orphaned_leases");
  registry.histogram("hprng.net.fill_seconds");
  registry.counter("hprng.net.client.connects");
  registry.counter("hprng.net.client.reconnects");
  registry.counter("hprng.net.client.requests");
  registry.counter("hprng.net.client.timeouts");
  registry.counter("hprng.net.client.adoptions");
}

NetServer::NetServer(serve::RngService& service, ServerOptions opts,
                     obs::MetricsRegistry* metrics)
    : service_(service), opts_(std::move(opts)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    register_catalogue(*metrics_);
    ins_.accepted = &metrics_->counter("hprng.net.accepted");
    ins_.disconnects = &metrics_->counter("hprng.net.disconnects");
    ins_.frames_rx = &metrics_->counter("hprng.net.frames_rx");
    ins_.frames_tx = &metrics_->counter("hprng.net.frames_tx");
    ins_.bytes_rx = &metrics_->counter("hprng.net.bytes_rx");
    ins_.bytes_tx = &metrics_->counter("hprng.net.bytes_tx");
    ins_.frame_errors = &metrics_->counter("hprng.net.frame_errors");
    ins_.protocol_errors = &metrics_->counter("hprng.net.protocol_errors");
    ins_.fills_ok = &metrics_->counter("hprng.net.fills_ok");
    ins_.fills_rejected = &metrics_->counter("hprng.net.fills_rejected");
    ins_.leases_opened = &metrics_->counter("hprng.net.leases_opened");
    ins_.leases_adopted = &metrics_->counter("hprng.net.leases_adopted");
    ins_.leases_released = &metrics_->counter("hprng.net.leases_released");
    ins_.checkpoints = &metrics_->counter("hprng.net.checkpoints");
    ins_.connections = &metrics_->gauge("hprng.net.connections");
    ins_.orphaned = &metrics_->gauge("hprng.net.orphaned_leases");
    ins_.fill_seconds = &metrics_->histogram("hprng.net.fill_seconds");
  }
  if (opts_.listen.empty()) {
    error_ = "NetServer: no listen endpoints";
    return;
  }
  for (const std::string& text : opts_.listen) {
    std::string err;
    const auto ep = Endpoint::parse(text, &err);
    if (!ep.has_value()) {
      error_ = err;
      break;
    }
    Listener lis;
    lis.fd = listen_on(*ep, &lis.resolved, &err);
    if (lis.fd < 0) {
      error_ = err;
      break;
    }
    set_nonblocking(lis.fd);
    listeners_.push_back(lis);
  }
  if (!error_.empty() || pipe(wake_pipe_) != 0) {
    if (error_.empty()) error_ = "NetServer: pipe failed";
    for (const Listener& lis : listeners_) close_fd(lis.fd);
    listeners_.clear();
    return;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  ok_ = true;
  loop_thread_ = std::thread([this] { loop(); });
  const int completers = std::max(1, opts_.completer_threads);
  completers_.reserve(static_cast<std::size_t>(completers));
  for (int i = 0; i < completers; ++i) {
    completers_.emplace_back([this] { completer_loop(); });
  }
}

NetServer::~NetServer() { stop(); }

std::vector<std::string> NetServer::endpoints() const {
  std::vector<std::string> out;
  out.reserve(listeners_.size());
  for (const Listener& lis : listeners_) {
    out.push_back(lis.resolved.to_string());
  }
  return out;
}

void NetServer::wake() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], &byte, 1);
}

void NetServer::stop() {
  if (stopping_.exchange(true)) {
    if (loop_thread_.joinable()) loop_thread_.join();
    for (std::thread& t : completers_) {
      if (t.joinable()) t.join();
    }
    return;
  }
  wake();
  cq_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::thread& t : completers_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, c] : conns_) {
    // Leases still bound to live connections park as orphans so a future
    // server over the same (still-running) service could hand them back.
    for (auto& [lease_id, session] : c->sessions) {
      orphans_.emplace(lease_id, std::move(session));
    }
    close_fd(c->fd);
  }
  conns_.clear();
  for (const Listener& lis : listeners_) {
    close_fd(lis.fd);
    if (lis.resolved.kind == Endpoint::Kind::kUnix) {
      ::unlink(lis.resolved.path.c_str());
    }
  }
  listeners_.clear();
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void NetServer::begin_drain() {
  draining_.store(true, std::memory_order_relaxed);
  wake();
}

bool NetServer::quiescent() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (inflight_fills_ != 0) return false;
  for (const auto& [id, c] : conns_) {
    if (!c->wbuf.empty()) return false;
  }
  return true;
}

NetServer::Stats NetServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats out = stats_;
  out.connections = conns_.size();
  out.orphaned = orphans_.size();
  return out;
}

void NetServer::loop() {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> conn_of_pfd;  // 0 = not a connection slot
  while (!stopping_.load(std::memory_order_relaxed)) {
    const bool draining = draining_.load(std::memory_order_relaxed);
    pfds.clear();
    conn_of_pfd.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    conn_of_pfd.push_back(0);
    for (const Listener& lis : listeners_) {
      // While draining: listener stays bound (the endpoint is still ours)
      // but no new connections are admitted.
      pfds.push_back({lis.fd, static_cast<short>(draining ? 0 : POLLIN), 0});
      conn_of_pfd.push_back(0);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [id, c] : conns_) {
        // While draining: never read — bytes left on the wire were never
        // served, which is the whole graceful-restart guarantee.
        short events = draining ? 0 : POLLIN;
        if (!c->wbuf.empty()) events |= POLLOUT;
        pfds.push_back({c->fd, events, 0});
        conn_of_pfd.push_back(id);
      }
    }
    const int rc = poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself failing is unrecoverable for the loop
    }
    std::lock_guard<std::mutex> lk(mu_);
    if ((pfds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 0; i < listeners_.size(); ++i) {
      if (!draining && (pfds[1 + i].revents & POLLIN) != 0) {
        accept_ready(i);
      }
    }
    for (std::size_t i = 1 + listeners_.size(); i < pfds.size(); ++i) {
      const std::uint64_t id = conn_of_pfd[i];
      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // dropped while handling others
      const std::shared_ptr<Conn> c = it->second;
      if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        drop(c);
        continue;
      }
      if (!draining && (pfds[i].revents & POLLIN) != 0) read_ready(c);
    }
    // Flush every dirty connection once per iteration: replies written by
    // op handlers above (and by completers between polls) go out now
    // instead of waiting for the next POLLOUT wakeup.
    std::vector<std::shared_ptr<Conn>> dirty;
    for (const auto& [id, c] : conns_) {
      if (!c->wbuf.empty()) dirty.push_back(c);
    }
    for (const std::shared_ptr<Conn>& c : dirty) write_ready(c);
  }
}

void NetServer::accept_ready(std::size_t listener_idx) {
  const Listener& lis = listeners_[listener_idx];
  for (;;) {
    const int fd = accept(lis.fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; poll will retry
    }
    if (opts_.injector != nullptr) {
      const fault::Outcome outcome = opts_.injector->on_event(
          fault::Site::kNetAccept, static_cast<int>(listener_idx));
      apply_delay(outcome);
      if (outcome.fail()) {
        // Injected accept fault: the peer sees an immediate disconnect —
        // the "listener flake" weather a reconnecting client must ride.
        close_fd(fd);
        continue;
      }
    }
    set_nonblocking(fd);
    auto c = std::make_shared<Conn>();
    c->fd = fd;
    c->id = next_conn_id_++;
    conns_.emplace(c->id, c);
    ++stats_.accepted;
    if (ins_.accepted != nullptr) ins_.accepted->add();
    if (ins_.connections != nullptr) {
      ins_.connections->set(static_cast<double>(conns_.size()));
    }
  }
}

void NetServer::read_ready(const std::shared_ptr<Conn>& c) {
  if (opts_.injector != nullptr) {
    const fault::Outcome outcome = opts_.injector->on_event(
        fault::Site::kNetRead, static_cast<int>(c->id & 0x7FFFFFFF));
    apply_delay(outcome);
    if (outcome.fail()) {
      drop(c);
      return;
    }
  }
  char tmp[1 << 16];
  for (;;) {
    const ssize_t n = read(c->fd, tmp, sizeof(tmp));
    if (n > 0) {
      c->rbuf.append(tmp, static_cast<std::size_t>(n));
      stats_.bytes_rx += static_cast<std::uint64_t>(n);
      if (ins_.bytes_rx != nullptr) {
        ins_.bytes_rx->add(static_cast<double>(n));
      }
      if (static_cast<std::size_t>(n) < sizeof(tmp)) break;
      continue;
    }
    if (n == 0) {  // orderly EOF
      drop(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    drop(c);
    return;
  }
  while (!c->closing) {
    Frame frame;
    std::size_t consumed = 0;
    std::string err;
    const Decode dr = decode(c->rbuf, &frame, &consumed, &err);
    if (dr == Decode::kNeedMore) break;
    if (dr == Decode::kBad) {
      ++stats_.frame_errors;
      if (ins_.frame_errors != nullptr) ins_.frame_errors->add();
      send_error(c, 0, ErrCode::kBadFrame, err);
      break;
    }
    c->rbuf.erase(0, consumed);
    ++stats_.frames_rx;
    if (ins_.frames_rx != nullptr) ins_.frames_rx->add();
    handle_frame(c, frame);
    if (conns_.count(c->id) == 0) return;  // handler dropped the conn
  }
}

void NetServer::write_ready(const std::shared_ptr<Conn>& c) {
  if (c->wbuf.empty()) return;
  if (opts_.injector != nullptr) {
    const fault::Outcome outcome = opts_.injector->on_event(
        fault::Site::kNetWrite, static_cast<int>(c->id & 0x7FFFFFFF));
    apply_delay(outcome);
    if (outcome.fail()) {
      drop(c);
      return;
    }
  }
  // MSG_NOSIGNAL: a peer that closed mid-reply must surface as EPIPE,
  // never as a process-wide SIGPIPE.
  const ssize_t n =
      ::send(c->fd, c->wbuf.data(), c->wbuf.size(), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    drop(c);
    return;
  }
  stats_.bytes_tx += static_cast<std::uint64_t>(n);
  if (ins_.bytes_tx != nullptr) ins_.bytes_tx->add(static_cast<double>(n));
  c->wbuf.erase(0, static_cast<std::size_t>(n));
  if (c->wbuf.empty() && c->closing) drop(c);
}

void NetServer::drop(const std::shared_ptr<Conn>& c) {
  if (conns_.erase(c->id) == 0) return;  // already dropped
  // Park the connection's leases for re-adoption instead of releasing:
  // a vanished peer is indistinguishable from one about to reconnect,
  // and the substream must survive for kAdopt (docs/NETWORK.md §6).
  for (auto& [lease_id, session] : c->sessions) {
    orphans_.emplace(lease_id, std::move(session));
  }
  c->sessions.clear();
  close_fd(c->fd);
  c->fd = -1;
  ++stats_.disconnects;
  if (ins_.disconnects != nullptr) ins_.disconnects->add();
  if (ins_.connections != nullptr) {
    ins_.connections->set(static_cast<double>(conns_.size()));
  }
  if (ins_.orphaned != nullptr) {
    ins_.orphaned->set(static_cast<double>(orphans_.size()));
  }
}

void NetServer::send(const std::shared_ptr<Conn>& c, const Frame& frame) {
  c->wbuf += encode(frame);
  ++stats_.frames_tx;
  if (ins_.frames_tx != nullptr) ins_.frames_tx->add();
}

void NetServer::send_error(const std::shared_ptr<Conn>& c,
                           std::uint64_t request_id, ErrCode code,
                           const std::string& message) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(code));
  w.put_str(message);
  Frame reply;
  reply.op = Op::kError;
  reply.request_id = request_id;
  reply.payload = w.take();
  send(c, reply);
  ++stats_.protocol_errors;
  if (ins_.protocol_errors != nullptr) ins_.protocol_errors->add();
  if (fatal(code)) c->closing = true;
}

void NetServer::handle_frame(const std::shared_ptr<Conn>& c,
                             const Frame& frame) {
  if (frame.version < kMinWireVersion || frame.version > kWireVersion) {
    send_error(c, frame.request_id, ErrCode::kVersionMismatch,
               "wire version " + std::to_string(frame.version) +
                   ", this server speaks " +
                   std::to_string(kMinWireVersion) + ".." +
                   std::to_string(kWireVersion));
    return;
  }
  if (!known_op(static_cast<std::uint8_t>(frame.op))) {
    send_error(c, frame.request_id, ErrCode::kBadRequest, "unknown op");
    return;
  }
  if (!c->hello_done && frame.op != Op::kHello) {
    send_error(c, frame.request_id, ErrCode::kBadRequest,
               "first frame must be hello");
    return;
  }
  WireReader r(frame.payload);
  switch (frame.op) {
    case Op::kHello: {
      const std::uint32_t magic = r.get_u32();
      const std::uint32_t proto = r.get_u32();
      const std::string client = r.get_str();
      (void)client;
      if (!r.ok() || magic != kHelloMagic) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad hello");
        return;
      }
      if (proto < kMinWireVersion || proto > kWireVersion) {
        send_error(c, frame.request_id, ErrCode::kVersionMismatch,
                   "hello proto " + std::to_string(proto) +
                       ", this server speaks " +
                       std::to_string(kMinWireVersion) + ".." +
                       std::to_string(kWireVersion));
        return;
      }
      c->hello_done = true;
      WireWriter w;
      // Echo the client's (accepted) proto: within the window the client
      // keeps speaking its own version and the server parses per-frame.
      w.put_u32(proto);
      w.put_str(service_.options().backend);
      w.put_u32(static_cast<std::uint32_t>(service_.num_shards()));
      w.put_u64(static_cast<std::uint64_t>(opts_.max_fill_words));
      Frame reply;
      reply.op = Op::kHelloAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kLease: {
      const std::uint8_t has_key = r.get_u8();
      const std::uint64_t key = r.get_u64();
      // v2 appends the tenant id; v1 peers land on the default tenant 0
      // (docs/NETWORK.md §3.2, docs/QOS.md §2).
      const std::uint64_t tenant = frame.version >= 2 ? r.get_u64() : 0;
      if (!r.ok()) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad lease");
        return;
      }
      serve::RngService::SessionSpec spec;
      spec.tenant = tenant;
      if (has_key != 0) spec.shard_key = key;
      auto session = service_.try_open_session(spec);
      if (!session.has_value()) {
        send_error(c, frame.request_id, ErrCode::kLeaseExhausted,
                   "lease pool exhausted");
        return;
      }
      const serve::Lease lease = session->lease();
      c->sessions.emplace(lease.id, *session);
      ++stats_.leases_opened;
      if (ins_.leases_opened != nullptr) ins_.leases_opened->add();
      WireWriter w;
      w.put_u64(lease.id);
      w.put_u32(static_cast<std::uint32_t>(lease.shard));
      w.put_u64(lease.slot);
      Frame reply;
      reply.op = Op::kLeaseAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kFill: {
      const std::uint64_t lease_id = r.get_u64();
      const std::uint32_t words = r.get_u32();
      const std::uint32_t timeout_ms = r.get_u32();
      if (!r.ok() || words == 0 ||
          static_cast<std::size_t>(words) > opts_.max_fill_words) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad fill");
        return;
      }
      const auto it = c->sessions.find(lease_id);
      if (it == c->sessions.end()) {
        send_error(c, frame.request_id, ErrCode::kUnknownLease,
                   "lease " + std::to_string(lease_id) +
                       " is not bound to this connection");
        return;
      }
      if (c->pending_fills >= opts_.max_pending_fills) {
        // Protocol-level shed: the connection's fill window is full. The
        // client sees an explicit kBackpressure reply, not a stall.
        ++stats_.fills_rejected;
        if (ins_.fills_rejected != nullptr) ins_.fills_rejected->add();
        send_error(c, frame.request_id, ErrCode::kBackpressure,
                   "per-connection fill window full");
        return;
      }
      auto buf = std::make_shared<std::vector<std::uint64_t>>(words);
      const std::chrono::nanoseconds timeout =
          timeout_ms == 0 ? std::chrono::nanoseconds{}
                          : std::chrono::milliseconds(timeout_ms);
      PendingFill pending;
      pending.conn_id = c->id;
      pending.request_id = frame.request_id;
      pending.lease_id = lease_id;
      pending.buf = buf;
      pending.ticket = it->second.fill_async(
          std::span<std::uint64_t>(buf->data(), buf->size()), timeout);
      ++c->pending_fills;
      ++inflight_fills_;
      ++stats_.fills;
      {
        std::lock_guard<std::mutex> cq(cq_mu_);
        completer_queue_.push_back(std::move(pending));
      }
      cq_cv_.notify_one();
      return;
    }
    case Op::kRelease: {
      const std::uint64_t lease_id = r.get_u64();
      if (!r.ok()) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad release");
        return;
      }
      bool released = c->sessions.erase(lease_id) > 0;
      if (!released) released = orphans_.erase(lease_id) > 0;
      if (released) {
        ++stats_.leases_released;
        if (ins_.leases_released != nullptr) ins_.leases_released->add();
        if (ins_.orphaned != nullptr) {
          ins_.orphaned->set(static_cast<double>(orphans_.size()));
        }
      }
      WireWriter w;
      w.put_u64(lease_id);
      w.put_u8(released ? 1 : 0);
      Frame reply;
      reply.op = Op::kReleaseAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kAdopt: {
      const std::uint64_t lease_id = r.get_u64();
      if (!r.ok()) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad adopt");
        return;
      }
      bool ok = c->sessions.count(lease_id) > 0;  // idempotent re-adopt
      if (!ok) {
        const auto orphan = orphans_.find(lease_id);
        if (orphan != orphans_.end()) {
          c->sessions.emplace(lease_id, std::move(orphan->second));
          orphans_.erase(orphan);
          ok = true;
        } else {
          auto session = service_.adopt_session(lease_id);
          if (session.has_value()) {
            c->sessions.emplace(lease_id, *session);
            ok = true;
          }
        }
        if (ok) {
          ++stats_.leases_adopted;
          if (ins_.leases_adopted != nullptr) ins_.leases_adopted->add();
          if (ins_.orphaned != nullptr) {
            ins_.orphaned->set(static_cast<double>(orphans_.size()));
          }
        }
      }
      WireWriter w;
      w.put_u64(lease_id);
      w.put_u8(ok ? 1 : 0);
      Frame reply;
      reply.op = Op::kAdoptAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kAdoptables: {
      std::vector<std::uint64_t> ids = service_.adoptable_lease_ids();
      for (const auto& [lease_id, session] : orphans_) {
        ids.push_back(lease_id);
      }
      std::sort(ids.begin(), ids.end());
      WireWriter w;
      w.put_u32(static_cast<std::uint32_t>(ids.size()));
      for (const std::uint64_t id : ids) w.put_u64(id);
      Frame reply;
      reply.op = Op::kAdoptablesAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kStat: {
      const serve::RngService::Stats s = service_.stats();
      WireWriter w;
      w.put_u64(s.submitted);
      w.put_u64(s.completed);
      w.put_u64(s.rejected);
      w.put_u64(s.shed);
      w.put_u64(s.timed_out);
      w.put_u64(s.closed);
      w.put_u64(s.failed);
      w.put_u64(s.numbers_served);
      w.put_u64(s.active_leases);
      w.put_u64(static_cast<std::uint64_t>(service_.healthy_shards()));
      w.put_u64(static_cast<std::uint64_t>(
          service_.adoptable_lease_ids().size() + orphans_.size()));
      w.put_u64(static_cast<std::uint64_t>(conns_.size()));
      // v2 appends the QoS rejection total; the ack mirrors the request's
      // version so a v1 peer sees exactly the v1 payload shape.
      if (frame.version >= 2) w.put_u64(s.rejected_quota);
      Frame reply;
      reply.version = frame.version;
      reply.op = Op::kStatAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kCkpt: {
      const std::string path = r.get_str();
      if (!r.ok() || path.empty()) {
        send_error(c, frame.request_id, ErrCode::kBadRequest, "bad ckpt");
        return;
      }
      // Safe inline: the loop thread is the only session opener/releaser,
      // so the no-lease-churn precondition of checkpoint() holds by
      // construction while we block here.
      std::string err;
      const bool ok = service_.checkpoint(path, &err);
      if (ok) {
        ++stats_.checkpoints;
        if (ins_.checkpoints != nullptr) ins_.checkpoints->add();
      }
      WireWriter w;
      w.put_u8(ok ? 1 : 0);
      w.put_str(err);
      Frame reply;
      reply.op = Op::kCkptAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    case Op::kQuality: {
      WireWriter w;
      if (opts_.scrubber == nullptr) {
        w.put_u8(0);
      } else {
        // Doubles cross the wire as their IEEE-754 bit images so the
        // client-side report is byte-identical to the server's (the
        // determinism contract extends across the wire).
        const quality::QualityReport rep = opts_.scrubber->report();
        w.put_u8(1);
        w.put_str(rep.backend);
        w.put_u32(static_cast<std::uint32_t>(rep.resting_tier));
        w.put_u32(static_cast<std::uint32_t>(rep.tier));
        w.put_u64(rep.passes);
        w.put_u64(rep.words);
        w.put_u64(rep.anomalies);
        w.put_u64(rep.escalations);
        w.put_u64(rep.feed_failures);
        w.put_u64(rep.batteries);
        w.put_u8(rep.anomalous ? 1 : 0);
        w.put_str(rep.last_battery);
        w.put_u32(static_cast<std::uint32_t>(rep.last_passed));
        w.put_u32(static_cast<std::uint32_t>(rep.last_total));
        w.put_u64(std::bit_cast<std::uint64_t>(rep.last_ks_d));
        w.put_u64(std::bit_cast<std::uint64_t>(rep.last_ks_p));
        w.put_u8(rep.last_ks_valid ? 1 : 0);
        w.put_u32(static_cast<std::uint32_t>(rep.streams.size()));
        for (const quality::StreamReport& s : rep.streams) {
          w.put_u64(s.lease_id);
          w.put_u64(s.words);
          w.put_u64(std::bit_cast<std::uint64_t>(s.freq_p));
          w.put_u64(std::bit_cast<std::uint64_t>(s.corr_p));
          w.put_u8(s.adopted ? 1 : 0);
        }
        w.put_u32(static_cast<std::uint32_t>(rep.history.size()));
        for (const quality::AnomalyRecord& a : rep.history) {
          w.put_u64(a.pass);
          w.put_u32(static_cast<std::uint32_t>(a.tier));
          w.put_str(a.what);
        }
      }
      Frame reply;
      reply.op = Op::kQualityAck;
      reply.request_id = frame.request_id;
      reply.payload = w.take();
      send(c, reply);
      return;
    }
    default:
      send_error(c, frame.request_id, ErrCode::kBadRequest,
                 std::string("server does not accept op ") +
                     net::to_string(frame.op));
      return;
  }
}

void NetServer::completer_loop() {
  for (;;) {
    PendingFill job;
    {
      std::unique_lock<std::mutex> cq(cq_mu_);
      cq_cv_.wait(cq, [this] {
        return !completer_queue_.empty() ||
               stopping_.load(std::memory_order_relaxed);
      });
      if (completer_queue_.empty()) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        continue;
      }
      job = std::move(completer_queue_.front());
      completer_queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    const serve::Status status = job.ticket.wait();
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::lock_guard<std::mutex> lk(mu_);
    if (status == serve::Status::kOk) {
      ++stats_.fills_ok;
      if (ins_.fills_ok != nullptr) ins_.fills_ok->add();
    } else {
      ++stats_.fills_rejected;
      if (ins_.fills_rejected != nullptr) ins_.fills_rejected->add();
    }
    if (ins_.fill_seconds != nullptr) ins_.fill_seconds->observe(seconds);
    --inflight_fills_;
    const auto it = conns_.find(job.conn_id);
    if (it == conns_.end()) continue;  // peer left; words are orphaned
    const std::shared_ptr<Conn>& c = it->second;
    if (c->pending_fills > 0) --c->pending_fills;
    WireWriter w;
    w.put_u64(job.lease_id);
    w.put_u32(static_cast<std::uint32_t>(status));
    if (status == serve::Status::kOk) {
      w.put_u32(static_cast<std::uint32_t>(job.buf->size()));
      w.put_words(*job.buf);
    } else {
      w.put_u32(0);
    }
    Frame reply;
    reply.op = Op::kFillAck;
    reply.request_id = job.request_id;
    reply.payload = w.take();
    send(c, reply);
    wake();  // the loop flushes dirty connections on wakeup
  }
}

}  // namespace hprng::net
