#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hybrid_prng.hpp"
#include "listrank/list.hpp"
#include "sim/device.hpp"

namespace hprng::listrank {

/// Where the FIS coin flips of Algorithm 3 come from — the three series of
/// Figure 7.
enum class RngStrategy {
  /// "Hybrid Time (Our PRNG)": on-demand draws, exactly as many as there
  /// are surviving nodes each iteration (Algorithm 3, line 6).
  kOnDemandHybrid,
  /// "Hybrid Time (glibc rand)": the approach of [3] — the CPU pre-generates
  /// a conservative upper bound of random words per iteration (it cannot
  /// know the surviving count without a readback) and ships them over PCIe.
  kPregenHostGlibc,
  /// "Pure GPU MT": the whole iteration's randomness is batch-generated on
  /// the GPU by per-thread Mersenne twisters; the CPU idles.
  kPregenDeviceMt,
};

const char* to_string(RngStrategy s);

/// Outcome of the reduction phase (Phase I of the 3-phase algorithm).
struct ReduceStats {
  double sim_seconds = 0.0;
  int iterations = 0;
  std::uint32_t remaining_nodes = 0;
  /// Random words actually consumed vs provisioned (the on-demand win).
  std::uint64_t random_words_used = 0;
  std::uint64_t random_words_provisioned = 0;
};

/// Full result of 3-phase hybrid list ranking.
struct RankResult {
  std::vector<std::uint32_t> ranks;
  ReduceStats reduce;         // Phase I
  double phase2_sim_seconds = 0.0;
  double phase3_sim_seconds = 0.0;
  [[nodiscard]] double total_sim_seconds() const {
    return reduce.sim_seconds + phase2_sim_seconds + phase3_sim_seconds;
  }
};

/// The paper's Application I: 3-phase hybrid list ranking [3] with the FIS
/// reduction of Algorithm 3 driven by a pluggable randomness strategy.
///
/// Phase I repeatedly removes a fractional independent set (b(u)=1 and both
/// neighbours 0) until <= n / log2(n) nodes remain; Phase II ranks the
/// remainder (Helman-JaJa, as in [3]); Phase III re-inserts the removed
/// nodes iteration group by iteration group in reverse.
class HybridListRanker {
 public:
  /// @param hybrid required for kOnDemandHybrid (may be null otherwise).
  HybridListRanker(sim::Device& device, core::HybridPrng* hybrid,
                   RngStrategy strategy, std::uint64_t seed);

  /// Rank the list; exact ranks plus per-phase simulated timings.
  RankResult rank(const LinkedList& list);

  /// Phase I only (what Figure 7 plots).
  ReduceStats reduce_only(const LinkedList& list);

 private:
  struct Reduction;
  /// Shared Phase-I machinery; fills the removal log used by Phase III.
  ReduceStats reduce_impl(const LinkedList& list, Reduction& red);

  sim::Device& device_;
  core::HybridPrng* hybrid_;
  RngStrategy strategy_;
  std::uint64_t seed_;
};

}  // namespace hprng::listrank
