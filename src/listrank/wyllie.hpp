#pragma once

#include <vector>

#include "listrank/list.hpp"
#include "sim/device.hpp"

namespace hprng::listrank {

/// Wyllie's pointer-jumping list ranking [31]: O(n log n) work, the
/// classical GPU baseline. Runs on the device simulator; returned ranks are
/// exact. Also reports the simulated seconds of the kernel sequence.
struct WyllieResult {
  std::vector<std::uint32_t> ranks;
  double sim_seconds = 0.0;
  int iterations = 0;
};

WyllieResult wyllie_rank(sim::Device& device, const LinkedList& list);

}  // namespace hprng::listrank
