#include "listrank/helman_jaja.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace hprng::listrank {
namespace {

constexpr double kWalkOpsPerNode = 90.0;   // dependent global loads
constexpr double kApplyOpsPerNode = 20.0;  // one gather + add + store

}  // namespace

HelmanJajaResult helman_jaja_rank(sim::Device& device, const LinkedList& list,
                                  prng::Generator& rng,
                                  std::uint32_t num_splitters) {
  const std::uint32_t n = list.size();
  if (num_splitters == 0) {
    num_splitters = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n))));
  }
  num_splitters = std::min(num_splitters, n);

  // Choose distinct splitters; the head must be one so every node lands in
  // exactly one sublist.
  std::vector<std::uint32_t> splitters;
  std::vector<char> is_splitter(n, 0);
  splitters.push_back(list.head);
  is_splitter[list.head] = 1;
  while (splitters.size() < num_splitters) {
    const auto u = static_cast<std::uint32_t>(rng.next_below(n));
    if (!is_splitter[u]) {
      is_splitter[u] = 1;
      splitters.push_back(u);
    }
  }

  sim::Buffer<std::uint32_t> succ(n), local_rank(n), sublist_of(n);
  sim::Buffer<std::uint32_t> sublist_next(num_splitters);
  sim::Buffer<std::uint32_t> sublist_len(num_splitters);
  {
    auto s = succ.device_span();
    for (std::uint32_t i = 0; i < n; ++i) s[i] = list.succ[i];
  }

  sim::Stream stream;
  const double sim_start = device.engine().now();

  // Kernel 1: each splitter walks until the next splitter (or the tail),
  // writing local ranks and its sublist id; records which sublist follows.
  const std::uint32_t walk_budget = n;  // worst case: one giant sublist
  device.launch(
      stream, "Walk", num_splitters,
      sim::KernelCost{kWalkOpsPerNode * static_cast<double>(walk_budget) /
                          num_splitters,
                      12.0 * static_cast<double>(walk_budget) /
                          num_splitters},
      [&, s = succ.device_span(), lr = local_rank.device_span(),
       so = sublist_of.device_span(), nx = sublist_next.device_span(),
       ln = sublist_len.device_span()](std::uint64_t tid) {
        const std::uint32_t start = splitters[static_cast<std::size_t>(tid)];
        std::uint32_t u = start;
        std::uint32_t r = 0;
        for (;;) {
          lr[u] = r++;
          so[u] = static_cast<std::uint32_t>(tid);
          const std::uint32_t next = s[u];
          if (next == kNil || is_splitter[next]) {
            nx[static_cast<std::size_t>(tid)] =
                next == kNil ? kNil : next;
            ln[static_cast<std::size_t>(tid)] = r;
            break;
          }
          u = next;
        }
      });

  // Host step: rank the list of sublists (s entries, sequential).
  std::vector<std::uint32_t> offset(num_splitters, 0);
  device.host_task(
      stream, "RankSublists", 50e-9 * num_splitters,
      [&, nx = sublist_next.device_span(), ln = sublist_len.device_span()] {
        // Map each splitter node -> its sublist index.
        std::vector<std::uint32_t> sublist_of_splitter(n, kNil);
        for (std::uint32_t i = 0; i < num_splitters; ++i) {
          sublist_of_splitter[splitters[i]] = i;
        }
        std::uint32_t cur = 0;  // sublist of the head (splitters[0])
        std::uint32_t acc = 0;
        for (std::uint32_t count = 0; count < num_splitters; ++count) {
          offset[cur] = acc;
          acc += ln[cur];
          const std::uint32_t next_node = nx[cur];
          if (next_node == kNil) break;
          cur = sublist_of_splitter[next_node];
        }
        HPRNG_CHECK(acc == n, "sublists must cover the whole list");
      });

  // Kernel 2: global rank = sublist offset + local rank.
  sim::Buffer<std::uint32_t> rank_buf(n);
  device.launch(stream, "Apply", n, sim::KernelCost{kApplyOpsPerNode, 12.0},
                [&, lr = local_rank.device_span(),
                 so = sublist_of.device_span(),
                 out = rank_buf.device_span()](std::uint64_t tid) {
                  const auto i = static_cast<std::size_t>(tid);
                  out[i] = offset[so[i]] + lr[i];
                });
  device.synchronize();

  HelmanJajaResult result;
  result.sim_seconds = device.engine().now() - sim_start;
  result.num_splitters = num_splitters;
  {
    auto ln = sublist_len.device_span();
    result.max_sublist = *std::max_element(ln.begin(), ln.end());
  }
  result.ranks.assign(rank_buf.device_span().begin(),
                      rank_buf.device_span().end());
  return result;
}

}  // namespace hprng::listrank
