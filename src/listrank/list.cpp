#include "listrank/list.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace hprng::listrank {

LinkedList make_random_list(std::uint32_t n, prng::Generator& rng) {
  HPRNG_CHECK(n >= 1, "list must have at least one node");
  // order[k] = node at position k; Fisher-Yates with the supplied rng.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i + 1));
    std::swap(order[i], order[j]);
  }
  LinkedList list;
  list.succ.assign(n, kNil);
  list.pred.assign(n, kNil);
  list.head = order[0];
  for (std::uint32_t k = 0; k + 1 < n; ++k) {
    list.succ[order[k]] = order[k + 1];
    list.pred[order[k + 1]] = order[k];
  }
  return list;
}

LinkedList make_ordered_list(std::uint32_t n) {
  HPRNG_CHECK(n >= 1, "list must have at least one node");
  LinkedList list;
  list.succ.resize(n);
  list.pred.resize(n);
  list.head = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    list.succ[i] = i + 1 < n ? i + 1 : kNil;
    list.pred[i] = i > 0 ? i - 1 : kNil;
  }
  return list;
}

std::vector<std::uint32_t> sequential_rank(const LinkedList& list) {
  std::vector<std::uint32_t> rank(list.size(), 0);
  std::uint32_t r = 0;
  for (std::uint32_t u = list.head; u != kNil; u = list.succ[u]) {
    rank[u] = r++;
  }
  HPRNG_CHECK(r == list.size(), "list is not a single chain");
  return rank;
}

bool verify_ranks(const LinkedList& list,
                  const std::vector<std::uint32_t>& ranks) {
  return ranks == sequential_rank(list);
}

}  // namespace hprng::listrank
