#include "listrank/hybrid_rank.hpp"

#include <algorithm>
#include <cmath>

#include "core/calibration.hpp"
#include "host/bit_feeder.hpp"
#include "prng/mt19937.hpp"
#include "prng/seed_seq.hpp"
#include "prng/splitmix64.hpp"
#include "util/check.hpp"

namespace hprng::listrank {
namespace {

// Per-node device issue costs (same calibration altitude as the walk kernel;
// see core/calibration.hpp for the provenance discipline).
constexpr double kFlipOpsPerNode = 20.0;     // write one coin bit
constexpr double kSelectOpsPerNode = 70.0;   // 3 bit loads + splice stores
constexpr double kCompactOpsPerNode = 12.0;  // stream compaction amortised
constexpr double kInsertOpsPerNode = 40.0;   // one load + one store chain
/// Host-side cost of ranking one node of the Phase-II remainder on the
/// multicore CPU (random-access bound; 6 i7 cores walking splitter chains).
constexpr double kHostPhase2NsPerNode = 18.0;
/// The provable whp bound used by [3] to pre-size randomness: at least a
/// 1/24 fraction of nodes leaves per iteration (cf. [12]).
constexpr double kFisGuaranteedFraction = 1.0 / 24.0;

}  // namespace

const char* to_string(RngStrategy s) {
  switch (s) {
    case RngStrategy::kOnDemandHybrid: return "hybrid-ondemand";
    case RngStrategy::kPregenHostGlibc: return "hybrid-glibc-pregen";
    case RngStrategy::kPregenDeviceMt: return "pure-gpu-mt";
  }
  return "?";
}

struct HybridListRanker::Reduction {
  // Device-resident list state.
  sim::Buffer<std::uint32_t> succ, pred, w, bits, active[2], pregen;
  std::uint32_t active_count = 0;
  int active_slot = 0;
  // Removal log for Phase III: ids grouped by iteration, and per-node
  // parent / parent-weight snapshots taken at removal time.
  std::vector<std::vector<std::uint32_t>> removed_by_iter;
  std::vector<std::uint32_t> rec_parent, rec_wparent;
};

HybridListRanker::HybridListRanker(sim::Device& device,
                                   core::HybridPrng* hybrid,
                                   RngStrategy strategy, std::uint64_t seed)
    : device_(device), hybrid_(hybrid), strategy_(strategy), seed_(seed) {
  HPRNG_CHECK(strategy != RngStrategy::kOnDemandHybrid || hybrid != nullptr,
              "on-demand strategy needs a HybridPrng");
}

ReduceStats HybridListRanker::reduce_impl(const LinkedList& list,
                                          Reduction& red) {
  const std::uint32_t n = list.size();
  red.succ.resize(n);
  red.pred.resize(n);
  red.w.resize(n);
  red.bits.resize(n);
  red.active[0].resize(n);
  red.active[1].resize(n);
  red.rec_parent.assign(n, kNil);
  red.rec_wparent.assign(n, 0);
  {
    auto s = red.succ.device_span();
    auto p = red.pred.device_span();
    auto w = red.w.device_span();
    auto a = red.active[0].device_span();
    for (std::uint32_t i = 0; i < n; ++i) {
      s[i] = list.succ[i];
      p[i] = list.pred[i];
      w[i] = 1;
      a[i] = i;
    }
  }
  red.active_count = n;
  red.active_slot = 0;

  const std::uint32_t target = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             static_cast<double>(n) / std::log2(std::max(4u, n))));

  host::BitFeeder pregen_feeder(device_.spec(), "glibc-rand", seed_);
  std::vector<std::uint32_t> pregen_host;
  prng::Mt19937 seed_mixer(static_cast<std::uint32_t>(seed_));
  double pregen_bound = static_cast<double>(n);

  // Algorithm 1 (one-time generator initialisation) runs in pre-processing,
  // outside the timed iteration loop — matching how the generator figures
  // exclude the one-time setup.
  if (strategy_ == RngStrategy::kOnDemandHybrid) hybrid_->initialize(n);

  sim::Stream compute;
  ReduceStats stats;
  device_.engine().fence();  // timed window starts on an idle machine
  const double sim_start = device_.engine().now();

  while (red.active_count > target && stats.iterations < 96) {
    const std::uint32_t active = red.active_count;
    const int slot = red.active_slot;
    auto active_span = red.active[slot].device_span();

    // ---- 1. Acquire this iteration's coin flips into bits[u]. ----------
    sim::OpId flip;
    switch (strategy_) {
      case RngStrategy::kOnDemandHybrid: {
        auto round = hybrid_->begin_round(active, 1);
        flip = device_.launch(
            compute, "Flip", active,
            sim::KernelCost{
                kFlipOpsPerNode + hybrid_->device_ops_for_draws_inline(1),
                12.0},
            [this, round, active_span,
             bits = red.bits.device_span()](std::uint64_t tid) {
              auto rng = hybrid_->thread_rng(round, tid);
              bits[active_span[static_cast<std::size_t>(tid)]] =
                  static_cast<std::uint32_t>(rng.next() & 1u);
            },
            {round.ready});
        hybrid_->end_round(round, flip);
        stats.random_words_used += active * hybrid_->words_per_draw();
        stats.random_words_provisioned += active * hybrid_->words_per_draw();
        break;
      }
      case RngStrategy::kPregenHostGlibc: {
        // [3]: the CPU cannot know the surviving count, so it generates the
        // provable upper bound worth of numbers and ships all of them.
        const auto bound = static_cast<std::uint32_t>(pregen_bound);
        if (red.pregen.size() < bound || pregen_host.size() < bound) {
          device_.synchronize();
          red.pregen.resize(bound);
          pregen_host.resize(bound);
        }
        sim::Stream feed_stream;
        const sim::OpId feed = device_.host_task(
            feed_stream, "FEED", pregen_feeder.seconds_for_words(bound),
            [&pregen_feeder, &pregen_host, bound] {
              pregen_feeder.fill(std::span(pregen_host).first(bound));
            });
        sim::Stream xfer;
        const sim::OpId copy = device_.memcpy_h2d(
            xfer,
            std::span<const std::uint32_t>(pregen_host).first(bound),
            red.pregen, {feed});
        flip = device_.launch(
            compute, "Flip", active, sim::KernelCost{kFlipOpsPerNode, 12.0},
            [active_span, pregen = red.pregen.device_span(),
             bits = red.bits.device_span()](std::uint64_t tid) {
              bits[active_span[static_cast<std::size_t>(tid)]] =
                  pregen[static_cast<std::size_t>(tid)] & 1u;
            },
            {copy});
        stats.random_words_used += active;
        stats.random_words_provisioned += bound;
        break;
      }
      case RngStrategy::kPregenDeviceMt:
      default: {
        const auto bound = static_cast<std::uint32_t>(pregen_bound);
        if (red.pregen.size() < bound) {
          device_.synchronize();
          red.pregen.resize(bound);
        }
        // Batch generation on the GPU itself: 4096 twisters, CPU idle.
        const std::uint32_t pool = std::min<std::uint32_t>(4096, bound);
        const std::uint32_t per_thread = (bound + pool - 1) / pool;
        const std::uint32_t kernel_seed = seed_mixer.next_u32();
        const sim::OpId gen = device_.launch(
            compute, "GenMT", pool,
            sim::KernelCost{core::kMtDeviceOpsPerNumber * per_thread / 2.0,
                            4.0 * per_thread},
            [pregen = red.pregen.device_span(), per_thread, bound,
             kernel_seed](std::uint64_t tid) {
              const std::uint64_t begin = tid * per_thread;
              const std::uint64_t end =
                  std::min<std::uint64_t>(bound, begin + per_thread);
              if (begin >= end) return;
              prng::Mt19937 g(static_cast<std::uint32_t>(
                  prng::SeedSequence(kernel_seed).derive(tid)));
              for (std::uint64_t i = begin; i < end; ++i) {
                pregen[static_cast<std::size_t>(i)] = g.next_u32();
              }
            });
        flip = device_.launch(
            compute, "Flip", active, sim::KernelCost{kFlipOpsPerNode, 12.0},
            [active_span, pregen = red.pregen.device_span(),
             bits = red.bits.device_span()](std::uint64_t tid) {
              bits[active_span[static_cast<std::size_t>(tid)]] =
                  pregen[static_cast<std::size_t>(tid)] & 1u;
            },
            {gen});
        stats.random_words_used += active;
        stats.random_words_provisioned += bound;
        break;
      }
    }
    pregen_bound *= 1.0 - kFisGuaranteedFraction;

    // ---- 2. Select the FIS and splice its nodes out. --------------------
    // b(u) = 1 and both neighbours 0; list ends never join the FIS (their
    // missing neighbour counts as a 1), keeping the head stable for
    // Phase II. Removed nodes are pairwise non-adjacent, so the splice
    // writes of distinct threads never alias (see the analysis in tests).
    const sim::OpId select = device_.launch(
        compute, "Select", active,
        sim::KernelCost{kSelectOpsPerNode, 40.0},
        [active_span, bits = red.bits.device_span(),
         succ = red.succ.device_span(), pred = red.pred.device_span(),
         w = red.w.device_span(), rec_p = red.rec_parent.data(),
         rec_w = red.rec_wparent.data()](std::uint64_t tid) {
          const std::uint32_t u = active_span[static_cast<std::size_t>(tid)];
          const std::uint32_t p = pred[u];
          const std::uint32_t s = succ[u];
          if (p == kNil || s == kNil) return;
          if (bits[u] != 1u || bits[p] != 0u || bits[s] != 0u) return;
          rec_p[u] = p;
          rec_w[u] = w[p];
          w[p] += w[u];
          succ[p] = s;
          pred[s] = p;
        },
        {flip});

    // ---- 3. Compact the survivors (stream compaction; the one-word count
    //         readback is the paper's per-iteration synchronisation). ------
    const int next_slot = slot ^ 1;
    red.removed_by_iter.emplace_back();
    auto* removed_group = &red.removed_by_iter.back();
    device_.launch(
        compute, "Compact", active,
        sim::KernelCost{kCompactOpsPerNode, 8.0},
        [this, &red, active_span, next_slot, active,
         removed_group](std::uint64_t tid) {
          if (tid != 0) return;  // compaction modelled as one scan pass
          auto out = red.active[next_slot].device_span();
          const auto* rec_p = red.rec_parent.data();
          std::uint32_t kept = 0;
          for (std::uint32_t i = 0; i < active; ++i) {
            const std::uint32_t u = active_span[i];
            if (rec_p[u] == kNil) {
              out[kept++] = u;
            } else {
              removed_group->push_back(u);
            }
          }
          red.active_count = kept;
        },
        {select});
    // Counter readback (4 bytes over PCIe) before the host can loop.
    sim::Stream d2h;
    static std::uint32_t counter_landing_zone;
    sim::Buffer<std::uint32_t> dummy(1);
    device_.memcpy_d2h(d2h, dummy,
                       std::span<std::uint32_t>(&counter_landing_zone, 1));
    device_.synchronize();
    red.active_slot = next_slot;
    ++stats.iterations;
    // rec_parent doubles as the removed-flag; nodes removed this iteration
    // stay marked (they are gone from the active list and never rejoin).
  }

  device_.synchronize();
  stats.sim_seconds = device_.engine().now() - sim_start;
  stats.remaining_nodes = red.active_count;
  return stats;
}

ReduceStats HybridListRanker::reduce_only(const LinkedList& list) {
  Reduction red;
  return reduce_impl(list, red);
}

RankResult HybridListRanker::rank(const LinkedList& list) {
  RankResult result;
  Reduction red;
  result.reduce = reduce_impl(list, red);

  const std::uint32_t n = list.size();
  sim::Buffer<std::uint32_t> rank_buf(n);

  // ---- Phase II: rank the <= n/log n remainder on the host with the
  // weighted Helman-JaJa of [10], as [3] does: s splitters walk their
  // sublists in parallel (multicore host), the short splitter chain is
  // ranked sequentially, and a final parallel pass adds the offsets. -------
  {
    sim::Stream host_stream;
    device_.engine().fence();
    const double t0 = device_.engine().now();
    const std::uint32_t m = red.active_count;
    const std::uint32_t splitter_count = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::sqrt(static_cast<double>(std::max(1u, m)))));
    // Host cost model: the walks and the apply pass split across the
    // 6-core host; the splitter-chain ranking is sequential but tiny.
    const double walk_cost =
        static_cast<double>(m) * kHostPhase2NsPerNode * 1e-9;
    const double chain_cost =
        static_cast<double>(splitter_count) * 50e-9;
    device_.host_task(
        host_stream, "Phase2", walk_cost + chain_cost,
        [&red, &rank_buf, &list, splitter_count] {
          auto ranks = rank_buf.device_span();
          auto succ = red.succ.device_span();
          auto w = red.w.device_span();
          // Collect the remaining chain's nodes to pick splitters evenly
          // (deterministic; [10] picks them randomly — equivalent here).
          const auto slot_span =
              red.active[red.active_slot].device_span();
          const std::uint32_t m_nodes = red.active_count;
          // Mark every ceil(m/s)-th active node a splitter, plus the head.
          std::vector<std::uint32_t> splitters;
          splitters.reserve(splitter_count + 1);
          splitters.push_back(list.head);
          const std::uint32_t stride =
              std::max<std::uint32_t>(1, m_nodes / splitter_count);
          std::vector<char> splitter_flag;  // indexed by node id lazily
          splitter_flag.assign(succ.size(), 0);
          splitter_flag[list.head] = 1;
          for (std::uint32_t i = 0; i < m_nodes; i += stride) {
            const std::uint32_t u = slot_span[i];
            if (!splitter_flag[u]) {
              splitter_flag[u] = 1;
              splitters.push_back(u);
            }
          }
          // Each splitter walks to the next splitter, accumulating the
          // weighted local rank (parallelisable across splitters).
          const std::uint32_t s =
              static_cast<std::uint32_t>(splitters.size());
          std::vector<std::uint32_t> sublist_len(s, 0), sublist_next(s, kNil);
          std::vector<std::uint32_t> sublist_of_splitter(succ.size(), kNil);
          for (std::uint32_t i = 0; i < s; ++i) {
            sublist_of_splitter[splitters[i]] = i;
          }
          for (std::uint32_t i = 0; i < s; ++i) {
            std::uint32_t u = splitters[i];
            std::uint32_t acc = 0;
            for (;;) {
              ranks[u] = acc;  // local (within-sublist) weighted rank
              acc += w[u];
              const std::uint32_t next = succ[u];
              if (next == kNil || splitter_flag[next]) {
                sublist_len[i] = acc;
                sublist_next[i] = next;
                break;
              }
              u = next;
            }
          }
          // Rank the (short) chain of sublists sequentially.
          std::vector<std::uint32_t> offset(s, 0);
          std::uint32_t cur = 0;  // the head's sublist
          std::uint32_t acc = 0;
          for (std::uint32_t count = 0; count < s; ++count) {
            offset[cur] = acc;
            acc += sublist_len[cur];
            if (sublist_next[cur] == kNil) break;
            cur = sublist_of_splitter[sublist_next[cur]];
          }
          // Final pass: global rank = sublist offset + local rank
          // (parallelisable; we fold it into the same walk structure).
          for (std::uint32_t i = 0; i < s; ++i) {
            std::uint32_t u = splitters[i];
            for (;;) {
              ranks[u] += offset[i];
              const std::uint32_t next = succ[u];
              if (next == kNil || splitter_flag[next]) break;
              u = next;
            }
          }
        });
    device_.synchronize();
    result.phase2_sim_seconds = device_.engine().now() - t0;
  }

  // ---- Phase III: re-insert removal groups in reverse order. -------------
  {
    sim::Stream compute;
    device_.engine().fence();
    const double t0 = device_.engine().now();
    for (auto it = red.removed_by_iter.rbegin();
         it != red.removed_by_iter.rend(); ++it) {
      if (it->empty()) continue;
      const std::vector<std::uint32_t>* group = &*it;
      device_.launch(
          compute, "Insert", group->size(),
          sim::KernelCost{kInsertOpsPerNode, 16.0},
          [group, &red, ranks = rank_buf.device_span()](std::uint64_t tid) {
            const std::uint32_t u = (*group)[static_cast<std::size_t>(tid)];
            ranks[u] = ranks[red.rec_parent[u]] + red.rec_wparent[u];
          });
    }
    device_.synchronize();
    result.phase3_sim_seconds = device_.engine().now() - t0;
  }

  result.ranks.assign(rank_buf.device_span().begin(),
                      rank_buf.device_span().end());
  return result;
}

}  // namespace hprng::listrank
