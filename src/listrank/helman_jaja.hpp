#pragma once

#include <vector>

#include "listrank/list.hpp"
#include "prng/generator.hpp"
#include "sim/device.hpp"

namespace hprng::listrank {

/// Helman-JaJa list ranking [10]: s random splitters decompose the list
/// into sublists; each splitter walks its sublist accumulating local ranks;
/// the (short) list of sublists is ranked sequentially; a final pass adds
/// the sublist offsets. This is the Phase-II algorithm of [3] and a useful
/// standalone ranker when n is moderate.
struct HelmanJajaResult {
  std::vector<std::uint32_t> ranks;
  double sim_seconds = 0.0;
  std::uint32_t num_splitters = 0;
  /// Length of the longest sublist (the walk kernel's load imbalance).
  std::uint32_t max_sublist = 0;
};

/// @param num_splitters 0 = auto (about sqrt(n)).
HelmanJajaResult helman_jaja_rank(sim::Device& device, const LinkedList& list,
                                  prng::Generator& rng,
                                  std::uint32_t num_splitters = 0);

}  // namespace hprng::listrank
