#pragma once

#include <cstdint>
#include <vector>

#include "prng/generator.hpp"

namespace hprng::listrank {

/// Sentinel successor of the list tail.
inline constexpr std::uint32_t kNil = 0xFFFFFFFFu;

/// A linked list of n nodes stored as a successor array (the layout used by
/// all the parallel algorithms; the predecessor array is precomputed as the
/// paper does before timing starts).
struct LinkedList {
  std::vector<std::uint32_t> succ;
  std::vector<std::uint32_t> pred;
  std::uint32_t head = 0;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(succ.size());
  }
};

/// Build a random list of n nodes: node identities are a random permutation
/// of the positions, which gives the irregular memory-access pattern the
/// paper calls "the most difficult to rank".
LinkedList make_random_list(std::uint32_t n, prng::Generator& rng);

/// An ordered list (node i precedes i+1): the easy, cache-friendly case,
/// used in tests and as a bench contrast.
LinkedList make_ordered_list(std::uint32_t n);

/// Sequential reference ranking: rank[head] = 0, rank[succ(u)] = rank[u]+1.
std::vector<std::uint32_t> sequential_rank(const LinkedList& list);

/// True iff `ranks` equals the sequential ranking of `list`.
bool verify_ranks(const LinkedList& list,
                  const std::vector<std::uint32_t>& ranks);

}  // namespace hprng::listrank
