#include "listrank/wyllie.hpp"

#include <utility>

namespace hprng::listrank {
namespace {

/// Per-node issue cost of one pointer-jumping step: two dependent global
/// loads (succ, rank of succ) dominate; same calibration altitude as the
/// walk kernel in core/calibration.hpp.
constexpr double kJumpOpsPerNode = 90.0;

}  // namespace

WyllieResult wyllie_rank(sim::Device& device, const LinkedList& list) {
  const std::uint32_t n = list.size();
  // Double-buffered rank/successor arrays (pointer jumping writes must not
  // race with reads of the same iteration).
  sim::Buffer<std::uint64_t> rank[2]{sim::Buffer<std::uint64_t>(n),
                                     sim::Buffer<std::uint64_t>(n)};
  sim::Buffer<std::uint32_t> succ[2]{sim::Buffer<std::uint32_t>(n),
                                     sim::Buffer<std::uint32_t>(n)};
  {
    auto r = rank[0].device_span();
    auto s = succ[0].device_span();
    for (std::uint32_t i = 0; i < n; ++i) {
      // Distance to end-of-list formulation: rank counts the hops this
      // node's pointer currently represents.
      r[i] = list.succ[i] == kNil ? 0 : 1;
      s[i] = list.succ[i];
    }
  }

  sim::Stream stream;
  const double sim_start = device.engine().now();
  int iterations = 0;
  int cur = 0;
  // ceil(log2(n)) jumping rounds always suffice.
  for (std::uint32_t span = 1; span < n; span *= 2, ++iterations) {
    const int nxt = cur ^ 1;
    device.launch(
        stream, "Jump", n,
        sim::KernelCost{kJumpOpsPerNode, 24.0},
        [rin = rank[cur].device_span(), sin = succ[cur].device_span(),
         rout = rank[nxt].device_span(),
         sout = succ[nxt].device_span()](std::uint64_t tid) {
          const auto i = static_cast<std::size_t>(tid);
          const std::uint32_t s = sin[i];
          if (s == kNil) {
            rout[i] = rin[i];
            sout[i] = kNil;
          } else {
            rout[i] = rin[i] + rin[s];
            sout[i] = sin[s];
          }
        });
    cur = nxt;
  }
  device.synchronize();

  WyllieResult result;
  result.sim_seconds = device.engine().now() - sim_start;
  result.iterations = iterations;
  result.ranks.resize(n);
  auto r = rank[cur].device_span();
  // rank currently holds distance-to-tail; convert to distance-from-head.
  for (std::uint32_t i = 0; i < n; ++i) {
    result.ranks[i] = static_cast<std::uint32_t>(
        (n - 1) - static_cast<std::uint32_t>(r[i]));
  }
  return result;
}

}  // namespace hprng::listrank
