#pragma once

#include <chrono>

namespace hprng::util {

/// Simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hprng::util
