#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace hprng::util {

/// Read a whole file into *out. Returns false (and leaves *out untouched)
/// when the file cannot be opened or read.
inline bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (ok) *out = std::move(data);
  return ok;
}

/// Write `content` to `path`, replacing any existing file. Returns false
/// when the file cannot be created or fully written.
inline bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) std::fclose(f);
  return ok;
}

}  // namespace hprng::util
