#include "util/table.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/check.hpp"

namespace hprng::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  HPRNG_CHECK(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += "| ";
      out += row[c];
      out.append(width[c] - row[c].size() + 1, ' ');
    }
    out += "|\n";
  };
  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(width[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto emit = [](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  std::string out;
  emit(header_, out);
  for (const auto& row : rows_) emit(row, out);
  return out;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace hprng::util
