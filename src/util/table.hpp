#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hprng::util {

/// ASCII table printer used by the benchmark harnesses so that every
/// reproduced table/figure prints in a uniform, diffable format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (for machine post-processing of bench output).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style formatting into a std::string (std::format is not complete
/// on this toolchain).
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hprng::util
