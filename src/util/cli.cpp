#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hprng::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      std::exit(2);
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_[std::string(arg)] = "true";
    } else {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    }
  }
}

std::uint64_t Cli::get_u64(const std::string& key, std::uint64_t def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key, std::string def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Cli::has(const std::string& key) const { return kv_.count(key) != 0; }

}  // namespace hprng::util
