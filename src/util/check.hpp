#pragma once

#include <cstdio>
#include <cstdlib>

// Precondition / invariant checking that stays on in release builds.
// The library is a research artifact: a silent out-of-contract call is far
// more expensive than the branch.
#define HPRNG_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HPRNG_CHECK failed at %s:%d: %s\n  %s\n",       \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
