#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hprng::util {

/// A fixed-size worker pool with a blocking task queue and a structured
/// parallel_for. On a single-core host the pool degrades gracefully: with
/// zero workers every task runs inline on the caller, which keeps the GPU
/// simulator deterministic and cheap in constrained containers.
class ThreadPool {
 public:
  /// @param num_workers number of worker threads; 0 means "run inline".
  explicit ThreadPool(std::size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns immediately; use wait_idle() to join.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), splitting the range across workers.
  /// Blocks until the whole range is processed.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t)>& fn);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

  /// A process-wide pool sized to the hardware (hardware_concurrency - 1,
  /// so the caller thread still participates via inline fallbacks).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace hprng::util
