#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hprng::util {

/// Minimal --key=value flag parser for the bench/example binaries.
/// Unknown positional arguments abort with a usage message; unknown flags are
/// collected so binaries can validate them.
class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace hprng::util
