#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace hprng::util {

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0 && tasks_.empty(); });
}

void ThreadPool::parallel_for(std::uint64_t begin, std::uint64_t end,
                              const std::function<void(std::uint64_t)>& fn) {
  if (begin >= end) return;
  const std::uint64_t n = end - begin;
  const std::size_t parts = workers_.empty() ? 1 : workers_.size();
  if (parts == 1) {
    for (std::uint64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::uint64_t chunk = (n + parts - 1) / parts;
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::size_t launched = 0;
  for (std::uint64_t lo = begin; lo < end; lo += chunk) {
    const std::uint64_t hi = std::min(end, lo + chunk);
    ++launched;
    remaining.fetch_add(1, std::memory_order_relaxed);
    submit([&, lo, hi] {
      for (std::uint64_t i = lo; i < hi; ++i) fn(i);
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(done_mu);
        done_cv.notify_one();
      }
    });
  }
  (void)launched;
  std::unique_lock<std::mutex> lk(done_mu);
  done_cv.wait(lk, [&] { return remaining.load(std::memory_order_acquire) == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max<std::size_t>(
      1, std::thread::hardware_concurrency()) - 1);
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace hprng::util
