#pragma once

#include <cstdint>

#include "core/hybrid_prng.hpp"
#include "photon/tissue.hpp"
#include "sim/device.hpp"

namespace hprng::photon {

/// Randomness source of the simulation — the two series of Figure 8.
enum class PhotonRngStrategy {
  /// "Original" [1]: a device MWC batch kernel pre-generates each round's
  /// random numbers into global memory; the photon kernel streams them back
  /// out of DRAM (the "memory transaction overhead" the paper removes).
  kPregenMwc,
  /// "Hybrid Result": on-demand draws from the hybrid PRNG, bits fed by the
  /// CPU while the photon kernel runs (Algorithm 4).
  kOnDemandHybrid,
};

const char* to_string(PhotonRngStrategy s);

/// Aggregate simulation outcome. Fractions are of the total launched photon
/// weight; by construction reflectance + transmittance + absorbed == 1 up
/// to the roulette's unbiased noise (tests assert the conservation).
struct McResult {
  double diffuse_reflectance = 0.0;
  double transmittance = 0.0;
  double absorbed_fraction = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t photons = 0;
  int rounds = 0;
  /// Duplicate initial weights among launched photons (the paper's "weight
  /// clashes"; they serialise the tally atomics in the real kernel and are
  /// charged as serialisation penalty in the cost model).
  std::uint64_t weight_clashes = 0;
  std::uint64_t total_steps = 0;
};

/// Application II: multi-layer Monte-Carlo photon migration on the device
/// simulator (Algorithm 4). Each device thread owns one photon packet;
/// packets that exhaust a round's provisioned draw budget continue in the
/// next round, which is exactly the iteration structure the paper overlaps
/// the feed with.
class PhotonMigration {
 public:
  PhotonMigration(sim::Device& device, core::HybridPrng* hybrid,
                  PhotonRngStrategy strategy, std::uint64_t seed);

  /// Simulate `photons` packets through `tissue`.
  /// @param slots photon packets in flight per kernel round.
  McResult run(std::uint64_t photons, const Tissue& tissue,
               std::uint64_t slots = 16384);

 private:
  sim::Device& device_;
  core::HybridPrng* hybrid_;
  PhotonRngStrategy strategy_;
  std::uint64_t seed_;
};

}  // namespace hprng::photon
