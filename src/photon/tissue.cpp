#include "photon/tissue.hpp"

namespace hprng::photon {

Tissue Tissue::three_layer() {
  Tissue t;
  t.layers = {
      {/*mu_a=*/0.37, /*mu_s=*/60.0, /*g=*/0.9, /*n=*/1.37, 0.00, 0.01},
      {/*mu_a=*/0.15, /*mu_s=*/12.0, /*g=*/0.8, /*n=*/1.37, 0.01, 0.11},
      {/*mu_a=*/0.30, /*mu_s=*/5.0, /*g=*/0.7, /*n=*/1.37, 0.11, 1.11},
  };
  return t;
}

Tissue Tissue::single_layer(double mu_a, double mu_s, double g,
                            double thickness) {
  Tissue t;
  t.layers = {{mu_a, mu_s, g, 1.37, 0.0, thickness}};
  return t;
}

}  // namespace hprng::photon
