#include "photon/mc.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/calibration.hpp"
#include "prng/mwc.hpp"
#include "prng/seed_seq.hpp"
#include "prng/splitmix64.hpp"
#include "util/check.hpp"

namespace hprng::photon {
namespace {

/// Device issue cost of one photon interaction step (move + deposit +
/// Henyey-Greenstein spin, including the transcendentals' SFU slots).
constexpr double kPhotonStepOps = 300.0;
/// Extra cost of a boundary crossing (Fresnel evaluation).
constexpr double kCrossingOps = 80.0;
/// Photons launched per slot per kernel round.
constexpr int kLaunchesPerRound = 4;
/// Initialisation draws per photon: weight + per-layer values that also
/// seed the in-kernel stepping MWC (the paper's "values required at each
/// layer").
constexpr int kInitDrawsPerPhoton = 4;
/// Serialisation penalty per weight clash (two photons with identical
/// weights contending on the same tally atomics), charged to the device.
constexpr double kClashPenaltyOps = 5000.0;
/// Roulette parameters (classic MCML values).
constexpr double kRouletteThreshold = 1e-4;
constexpr double kRouletteSurvival = 0.1;

double u01_from_u64(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

double u01_from_u32(std::uint32_t v) {
  return (static_cast<double>(v) + 0.5) * 0x1.0p-32;
}

/// Sample the Henyey-Greenstein deflection cosine.
double hg_cos_theta(double g, double u) {
  if (std::abs(g) < 1e-6) return 2.0 * u - 1.0;
  const double f = (1.0 - g * g) / (1.0 - g + 2.0 * g * u);
  return (1.0 + g * g - f * f) / (2.0 * g);
}

/// Unpolarised Fresnel reflectance for incidence cosine ci (>=0) crossing
/// n1 -> n2; on transmission *cos_t receives the refracted cosine.
double fresnel_reflectance(double n1, double n2, double ci, double* cos_t) {
  const double ratio = n1 / n2;
  const double sin_t2 = ratio * ratio * (1.0 - ci * ci);
  if (sin_t2 >= 1.0) return 1.0;  // total internal reflection
  const double ct = std::sqrt(1.0 - sin_t2);
  const double rs = (n1 * ci - n2 * ct) / (n1 * ci + n2 * ct);
  const double rp = (n1 * ct - n2 * ci) / (n1 * ct + n2 * ci);
  *cos_t = ct;
  return 0.5 * (rs * rs + rp * rp);
}

struct Dir {
  double x, y, z;
};

/// Rotate `d` by polar angle (cos = ct) and azimuth phi (standard MCML spin).
Dir spin(Dir d, double ct, double phi) {
  const double st = std::sqrt(std::max(0.0, 1.0 - ct * ct));
  const double cp = std::cos(phi);
  const double sp = std::sin(phi);
  if (std::abs(d.z) > 0.99999) {
    return {st * cp, st * sp, ct * (d.z >= 0 ? 1.0 : -1.0)};
  }
  const double denom = std::sqrt(1.0 - d.z * d.z);
  Dir out;
  out.x = st * (d.x * d.z * cp - d.y * sp) / denom + d.x * ct;
  out.y = st * (d.y * d.z * cp + d.x * sp) / denom + d.y * ct;
  out.z = -st * cp * denom + d.z * ct;
  // Renormalise to contain drift over thousands of spins.
  const double norm =
      std::sqrt(out.x * out.x + out.y * out.y + out.z * out.z);
  out.x /= norm;
  out.y /= norm;
  out.z /= norm;
  return out;
}

/// Per-slot tallies accumulated entirely thread-locally (no atomics in the
/// functional path; the clash penalty models the real kernel's atomics).
struct SlotTally {
  double launched_weight = 0.0;
  double reflected = 0.0;
  double transmitted = 0.0;
  double absorbed = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t photons = 0;
};

/// Simulate one photon to termination; returns charged device ops.
double simulate_photon(const Tissue& tissue, double w0, prng::Mwc& mwc,
                       SlotTally& tally) {
  const auto& layers = tissue.layers;
  double ops = 0.0;

  tally.launched_weight += w0;
  tally.photons += 1;

  // Specular reflection at the ambient/top interface (pencil beam, ci = 1).
  const double n0 = tissue.n_ambient;
  const double n1 = layers[0].n;
  const double rsp = ((n0 - n1) / (n0 + n1)) * ((n0 - n1) / (n0 + n1));
  tally.reflected += w0 * rsp;
  double w = w0 * (1.0 - rsp);

  double z = 0.0;
  Dir d{0.0, 0.0, 1.0};
  int layer = 0;
  std::uint64_t guard = 0;

  while (true) {
    HPRNG_CHECK(++guard < 1000000, "photon failed to terminate");
    const Layer& L = layers[static_cast<std::size_t>(layer)];
    // Sample the step length.
    double s = -std::log(std::max(1e-12, u01_from_u32(mwc.next_u32()))) /
               L.mu_t();
    // Propagate with up to 4 boundary crossings per step (see DESIGN.md).
    bool escaped = false;
    for (int crossing = 0; crossing < 4 && s > 0.0; ++crossing) {
      const Layer& cur = layers[static_cast<std::size_t>(layer)];
      double boundary_dist;
      if (d.z > 1e-12) {
        boundary_dist = (cur.z1 - z) / d.z;
      } else if (d.z < -1e-12) {
        boundary_dist = (cur.z0 - z) / d.z;
      } else {
        boundary_dist = 1e30;  // travelling parallel to the boundaries
      }
      if (s < boundary_dist) {
        z += s * d.z;
        s = 0.0;
        break;
      }
      // Hit a boundary: move there, Fresnel-decide.
      z = d.z > 0 ? cur.z1 : cur.z0;
      s -= boundary_dist;
      ops += kCrossingOps;
      const bool going_down = d.z > 0;
      const int next_layer = layer + (going_down ? 1 : -1);
      const double n_cur = cur.n;
      const double n_next =
          (next_layer < 0 || next_layer >= static_cast<int>(layers.size()))
              ? tissue.n_ambient
              : layers[static_cast<std::size_t>(next_layer)].n;
      double ct = 0.0;
      const double r =
          fresnel_reflectance(n_cur, n_next, std::abs(d.z), &ct);
      if (u01_from_u32(mwc.next_u32()) < r) {
        d.z = -d.z;  // internal reflection
        continue;
      }
      if (next_layer < 0) {
        tally.reflected += w;
        escaped = true;
        break;
      }
      if (next_layer >= static_cast<int>(layers.size())) {
        tally.transmitted += w;
        escaped = true;
        break;
      }
      // Refract into the next layer; the remaining dimensionless step is
      // rescaled by the interaction-coefficient ratio (MCML convention).
      const double scale = n_cur / n_next;
      d.x *= scale;
      d.y *= scale;
      d.z = (going_down ? 1.0 : -1.0) * ct;
      const double norm = std::sqrt(d.x * d.x + d.y * d.y + d.z * d.z);
      d.x /= norm;
      d.y /= norm;
      d.z /= norm;
      s *= cur.mu_t() / layers[static_cast<std::size_t>(next_layer)].mu_t();
      layer = next_layer;
    }
    if (escaped) break;

    // Interaction site: absorb, then scatter.
    const Layer& here = layers[static_cast<std::size_t>(layer)];
    const double dw = w * here.mu_a / here.mu_t();
    tally.absorbed += dw;
    w -= dw;
    const double ct = hg_cos_theta(here.g, u01_from_u32(mwc.next_u32()));
    const double phi = 2.0 * M_PI * u01_from_u32(mwc.next_u32());
    d = spin(d, ct, phi);
    tally.steps += 1;
    ops += kPhotonStepOps;

    // Roulette.
    if (w < kRouletteThreshold) {
      if (u01_from_u32(mwc.next_u32()) < kRouletteSurvival) {
        w /= kRouletteSurvival;
      } else {
        break;  // terminated; the lost weight is unbiased by construction
      }
    }
  }
  return ops;
}

}  // namespace

const char* to_string(PhotonRngStrategy s) {
  switch (s) {
    case PhotonRngStrategy::kPregenMwc: return "original-pregen-mwc";
    case PhotonRngStrategy::kOnDemandHybrid: return "hybrid-ondemand";
  }
  return "?";
}

PhotonMigration::PhotonMigration(sim::Device& device,
                                 core::HybridPrng* hybrid,
                                 PhotonRngStrategy strategy,
                                 std::uint64_t seed)
    : device_(device), hybrid_(hybrid), strategy_(strategy), seed_(seed) {
  HPRNG_CHECK(
      strategy != PhotonRngStrategy::kOnDemandHybrid || hybrid != nullptr,
      "on-demand strategy needs a HybridPrng");
}

McResult PhotonMigration::run(std::uint64_t photons, const Tissue& tissue,
                              std::uint64_t slots) {
  HPRNG_CHECK(photons >= 1, "need at least one photon");
  HPRNG_CHECK(!tissue.layers.empty(), "tissue needs at least one layer");
  slots = std::min(slots, photons);

  std::vector<SlotTally> tallies(slots);
  // Initial-weight keys per launched photon, for clash accounting.
  std::vector<std::uint64_t> weight_keys(photons, 0);
  std::atomic<std::uint64_t> next_photon{0};

  const std::uint64_t draws_per_slot =
      static_cast<std::uint64_t>(kLaunchesPerRound) * kInitDrawsPerPhoton;

  sim::Stream compute;
  sim::Buffer<std::uint32_t> pregen;
  prng::Mwc pregen_mwc(seed_ ^ 0xD1B54A32D192ED03ull);

  // One-time Algorithm-1 initialisation runs in pre-processing, outside
  // the timed window (as in the generator figures).
  if (strategy_ == PhotonRngStrategy::kOnDemandHybrid) {
    hybrid_->initialize(slots);
  }

  McResult result;
  result.photons = photons;
  device_.engine().fence();  // timed window starts on an idle machine
  const double sim_start = device_.engine().now();

  while (next_photon.load(std::memory_order_relaxed) < photons) {
    // ---- Acquire this round's initialisation randomness. ----------------
    core::HybridPrng::Round round{};
    sim::OpId randomness_ready = sim::kNoOp;
    double init_ops_per_photon = 0.0;
    if (strategy_ == PhotonRngStrategy::kOnDemandHybrid) {
      round = hybrid_->begin_round(slots, draws_per_slot);
      randomness_ready = round.ready;
      init_ops_per_photon =
          hybrid_->device_ops_for_draws_inline(kInitDrawsPerPhoton);
    } else {
      // "Original": batch-generate into global memory, then stream back.
      const std::uint64_t words = slots * draws_per_slot * 2;  // 64-bit each
      if (pregen.size() < words) {
        device_.synchronize();
        pregen.resize(words);
      }
      const std::uint32_t kernel_seed = pregen_mwc.next_u32();
      randomness_ready = device_.launch(
          compute, "GenMWC", slots,
          sim::KernelCost{core::kMwcDeviceOpsPerNumber * draws_per_slot,
                          8.0 * draws_per_slot},
          [pg = pregen.device_span(), draws_per_slot,
           kernel_seed](std::uint64_t tid) {
            prng::Mwc g(prng::SeedSequence(kernel_seed).derive(tid));
            for (std::uint64_t i = 0; i < draws_per_slot * 2; ++i) {
              pg[static_cast<std::size_t>(tid * draws_per_slot * 2 + i)] =
                  g.next_u32();
            }
          });
      init_ops_per_photon =
          core::kStoredRandomAccessOps * kInitDrawsPerPhoton;
    }

    // ---- Photon kernel: each slot pushes up to kLaunchesPerRound packets
    //      from launch to termination. ------------------------------------
    const PhotonRngStrategy strategy = strategy_;
    core::HybridPrng* hybrid = hybrid_;
    const sim::OpId kernel = device_.launch_dynamic(
        compute, "Photon", slots, sim::KernelCost{50.0, 64.0},
        [&, strategy, hybrid, round, init_ops_per_photon,
         pg = pregen.device_span()](std::uint64_t tid) -> double {
          SlotTally& tally = tallies[static_cast<std::size_t>(tid)];
          double ops = 0.0;
          // Per-thread draw cursors into this round's provisioned budget.
          core::HybridPrng::ThreadRng hybrid_rng;
          if (strategy == PhotonRngStrategy::kOnDemandHybrid) {
            hybrid_rng = hybrid->thread_rng(round, tid);
          }
          std::uint64_t pregen_cursor = tid * draws_per_slot * 2;
          auto init_draw = [&]() -> std::uint64_t {
            if (strategy == PhotonRngStrategy::kOnDemandHybrid) {
              return hybrid_rng.next();
            }
            const std::uint64_t lo = pg[static_cast<std::size_t>(
                pregen_cursor++)];
            const std::uint64_t hi = pg[static_cast<std::size_t>(
                pregen_cursor++)];
            return (hi << 32) | lo;
          };
          for (int l = 0; l < kLaunchesPerRound; ++l) {
            const std::uint64_t idx =
                next_photon.fetch_add(1, std::memory_order_relaxed);
            if (idx >= photons) {
              next_photon.store(photons, std::memory_order_relaxed);
              break;
            }
            const std::uint64_t d0 = init_draw();
            const std::uint64_t d1 = init_draw();
            const std::uint64_t d2 = init_draw();
            const std::uint64_t d3 = init_draw();
            ops += init_ops_per_photon;
            // The paper initialises photon weights randomly; layer values
            // d1..d3 seed the in-kernel stepping MWC (both variants step
            // with MWC exactly as CUDAMCML does).
            const double w0 = 0.5 + 0.5 * u01_from_u64(d0);
            weight_keys[static_cast<std::size_t>(idx)] =
                strategy == PhotonRngStrategy::kOnDemandHybrid
                    ? d0
                    : (d0 & 0xFFFFFFFFull);  // MWC supplies 32-bit values
            prng::Mwc mwc(d1 ^ (d2 << 1) ^ d3);
            ops += simulate_photon(tissue, w0, mwc, tally);
          }
          return ops;
        },
        randomness_ready == sim::kNoOp
            ? std::vector<sim::OpId>{}
            : std::vector<sim::OpId>{randomness_ready});
    if (strategy_ == PhotonRngStrategy::kOnDemandHybrid) {
      hybrid_->end_round(round, kernel);
    }
    device_.synchronize();
    ++result.rounds;
  }

  // ---- Weight-clash accounting + serialisation penalty. -----------------
  {
    std::vector<std::uint64_t> keys = weight_keys;
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] == keys[i - 1]) ++result.weight_clashes;
    }
    if (result.weight_clashes > 0) {
      sim::Stream penalty_stream;
      const double penalty_seconds =
          static_cast<double>(result.weight_clashes) * kClashPenaltyOps /
          device_.spec().core_clock_hz();
      device_.engine().submit(sim::Resource::kDevice, "Gather-penalty",
                              penalty_seconds, {}, nullptr);
      device_.synchronize();
    }
  }
  result.sim_seconds = device_.engine().now() - sim_start;

  double launched = 0.0;
  for (const auto& t : tallies) {
    launched += t.launched_weight;
    result.diffuse_reflectance += t.reflected;
    result.transmittance += t.transmitted;
    result.absorbed_fraction += t.absorbed;
    result.total_steps += t.steps;
  }
  HPRNG_CHECK(launched > 0.0, "no photon weight launched");
  result.diffuse_reflectance /= launched;
  result.transmittance /= launched;
  result.absorbed_fraction /= launched;
  return result;
}

}  // namespace hprng::photon
