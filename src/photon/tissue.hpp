#pragma once

#include <vector>

namespace hprng::photon {

/// One tissue layer of the MCML-style multi-layer model [1][4].
/// Units: cm for depths, 1/cm for interaction coefficients.
struct Layer {
  double mu_a = 0.1;  // absorption coefficient
  double mu_s = 10.0; // scattering coefficient
  double g = 0.9;     // Henyey-Greenstein anisotropy
  double n = 1.37;    // refractive index
  double z0 = 0.0;    // top boundary depth
  double z1 = 1.0;    // bottom boundary depth

  [[nodiscard]] double mu_t() const { return mu_a + mu_s; }
};

/// A stack of layers bounded by ambient medium above and below.
struct Tissue {
  std::vector<Layer> layers;
  double n_ambient = 1.0;

  /// The three-layer phantom used by the paper's Application II ("three
  /// simulation kernels ... three different layers").
  static Tissue three_layer();

  /// Single semi-infinite layer (classic MCML validation case).
  static Tissue single_layer(double mu_a, double mu_s, double g,
                             double thickness);

  [[nodiscard]] double total_thickness() const {
    return layers.empty() ? 0.0 : layers.back().z1;
  }
};

}  // namespace hprng::photon
