#pragma once

// hprng::quality — continuous, in-service statistical quality scrubbing
// (docs/QUALITY.md).
//
// The paper validates its hybrid generator with DIEHARD / TestU01 run once,
// offline (PAPER.md §IV-B); a production service needs the same evidence
// *continuously*, and — per Shoverand and the GPU-RNG surveys — it needs it
// through the leased-substream path real traffic uses, because parallel
// substream schemes fail statistically in ways a single offline stream
// never shows. A QualityScrubber is that monitor: it leases real substreams
// from an RngService (same queue, same admission policy, same backend
// shards — just deeply negative shed priority) and scrubs them with a
// tiered battery stack:
//
//   tier 0 (smoke)  — every pass, per stream: byte-frequency chi-square +
//                     lag-1 serial correlation over a fresh pass_words
//                     draw. Cheap enough to run always.
//   tier 1 (small)  — the SmallCrush-equivalent 15-statistic battery
//                     (stat::crush_battery) drawn through stream 0's lease.
//                     Runs every pass when escalated (or when the resting
//                     tier is >= 1).
//   tier 2 (crush)  — the Crush-tier parameter set (4x samples), triggered
//                     by a tier-1 anomaly or escalate() on demand.
//
// Determinism is the design constraint, exactly as for fault injection:
// a quality verdict must be replayable or it is an unfalsifiable alarm.
// Per-stream smoke draws are partitioned work (workers pull stream indices
// off an atomic counter; results land in per-stream slots and merge in
// stream order), batteries draw single-threaded through stream 0, and the
// battery generator discards its partial buffer at every pass boundary —
// so the QualityReport after N run_pass() calls is byte-identical for any
// scrub worker count, and bit-exact across checkpoint/restore (the QUAL
// snapshot section carries cursors, tier and history; streams resume via
// lease adoption).
//
// Wiring: knobs ride on serve::ServiceOptions::scrub; gauges/counters are
// the `hprng.quality.*` catalogue (docs/OBSERVABILITY.md); snapshots get a
// QUAL section through RngService's checkpoint hook; the wire protocol
// exposes the report via the `quality` op (docs/NETWORK.md §3.8); chaos
// tests force verdicts with the quality_feed / quality_verdict fault sites
// (docs/FAULTS.md).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace hprng::state {
class SnapshotWriter;
}  // namespace hprng::state

namespace hprng::quality {

/// Pre-resolve the `hprng.quality.*` catalogue on a registry so snapshots
/// are complete (every documented instrument present at value zero) even
/// before — or entirely without — scrub traffic. The scrubber calls this;
/// docs_lint_test cross-checks it against docs/OBSERVABILITY.md.
void register_catalogue(obs::MetricsRegistry& registry);

/// One entry of the scrubber's bounded anomaly history. `pass` is the
/// 1-based scrub pass that raised it; `tier` is the tier of the evidence.
struct AnomalyRecord {
  std::uint64_t pass = 0;
  int tier = 0;
  std::string what;
};

/// Per-stream scrub state: which lease, how far the scrub cursor has
/// advanced, and the last pass's smoke p-values.
struct StreamReport {
  std::uint64_t lease_id = 0;
  std::uint64_t words = 0;   ///< u64 words drawn through this lease
  double freq_p = 1.0;       ///< byte-frequency chi-square p (last pass)
  double corr_p = 1.0;       ///< lag-1 serial-correlation p (last pass)
  bool adopted = false;      ///< restored mid-stream from a snapshot
};

/// Machine-readable scrub verdict (docs/QUALITY.md §4). Deterministic: a
/// pure function of (service seed, backend, ScrubberOptions, fault plan,
/// run_pass count) — never of wall time or worker interleaving.
struct QualityReport {
  std::string backend;
  int resting_tier = 0;      ///< configured floor (ScrubberOptions::tier)
  int tier = 0;              ///< current escalation tier
  std::uint64_t passes = 0;
  std::uint64_t words = 0;   ///< total u64 words scrubbed (all streams)
  std::uint64_t anomalies = 0;
  std::uint64_t escalations = 0;
  std::uint64_t feed_failures = 0;  ///< scrub draws lost (faults/overload)
  std::uint64_t batteries = 0;      ///< tier-1/2 battery runs
  bool anomalous = false;    ///< latched by a confirmed (tier-2) anomaly
  std::string last_battery;  ///< name of the last battery run ("" if none)
  int last_passed = 0;
  int last_total = 0;
  double last_ks_d = 0.0;    ///< KS-over-p of the last battery
  double last_ks_p = 0.0;
  bool last_ks_valid = false;
  std::vector<StreamReport> streams;
  std::vector<AnomalyRecord> history;

  /// Fraction of the last battery's statistics that passed (1.0 before
  /// any battery has run) — the `hprng.quality.pass_ratio` gauge.
  [[nodiscard]] double pass_ratio() const;

  /// Canonical flat-JSON image (stable field order, %.17g doubles), the
  /// `serve_load --quality-json` artifact. Byte-identical reports compare
  /// equal as strings — the determinism tests pin exactly that.
  [[nodiscard]] std::string to_json() const;
};

/// The scrubber. Construction leases its streams (or re-adopts them from a
/// restored service's QUAL section), registers the service checkpoint hook
/// and resolves the instrument catalogue; destruction detaches the hook
/// and returns the leases. The service must outlive the scrubber.
///
/// Two driving modes: run_pass()/run_passes() for deterministic synchronous
/// scrubbing (tests, serve_load's paced mode), or start()/stop() for the
/// production background thread with duty-cycle pacing (§5: after each
/// pass the thread sleeps pass_time * (1 - duty) / duty, so foreground
/// fills keep the machine).
class QualityScrubber {
 public:
  explicit QualityScrubber(serve::RngService& service,
                           obs::MetricsRegistry* metrics = nullptr);
  ~QualityScrubber();

  QualityScrubber(const QualityScrubber&) = delete;
  QualityScrubber& operator=(const QualityScrubber&) = delete;

  /// Run exactly one scrub pass: per-stream smoke draws (partitioned over
  /// ScrubberOptions::workers threads), then — single-threaded — the
  /// escalation decision and any tier-1/2 battery. Blocks while a
  /// checkpoint holds the pass fence.
  void run_pass();
  void run_passes(int n);

  /// On-demand escalation: raise the current tier to `tier` (1 or 2); the
  /// next pass runs that battery. A clean battery de-escalates back to the
  /// resting tier.
  void escalate(int tier);

  /// Reset the latched `anomalous` flag (operator acknowledgement). The
  /// anomaly history and counters are NOT cleared.
  void acknowledge();

  /// Background mode. Idempotent; stop() is implicit in the destructor.
  void start();
  void stop();

  /// Snapshot of the current verdict (thread-safe; never blocks on a
  /// running battery longer than the state merge).
  [[nodiscard]] QualityReport report() const;

  /// This backend's index in serve::known_backends() — the target of the
  /// quality_verdict fault site.
  [[nodiscard]] int backend_index() const { return backend_index_; }

 private:
  struct StreamSlot {
    serve::Session session;
    std::uint64_t lease_id = 0;
    std::uint64_t words = 0;
    double freq_p = 1.0;
    double corr_p = 1.0;
    bool adopted = false;
  };

  struct SmokeResult {
    bool fed = false;
    double freq_p = 1.0;
    double corr_p = 1.0;
  };

  struct Instruments {
    obs::Counter* passes = nullptr;
    obs::Counter* words = nullptr;
    obs::Counter* anomalies = nullptr;
    obs::Counter* escalations = nullptr;
    obs::Counter* feed_failures = nullptr;
    obs::Counter* batteries = nullptr;
    obs::Gauge* tier = nullptr;
    obs::Gauge* last_ks_d = nullptr;
    obs::Gauge* last_ks_p = nullptr;
    obs::Gauge* pass_ratio = nullptr;
    obs::Gauge* anomalous = nullptr;
    obs::Gauge* streams = nullptr;
  };

  /// Draw + smoke-test stream `i` (worker threads; no shared mutation).
  [[nodiscard]] SmokeResult scrub_stream(std::size_t i);
  /// Merge results in stream order, decide escalation, run batteries and
  /// publish instruments. Single-threaded, under pass_mu_.
  void finalize_pass(const std::vector<SmokeResult>& results);
  /// Run the battery for `tier` through stream 0; true if it is anomalous.
  bool run_battery_tier(int tier, std::string* what);
  /// Checkpoint-hook body: append the QUAL section (state_mu_ taken).
  void save_state(state::SnapshotWriter& w) const;
  /// Re-attach to a restored service from its QUAL payload; false when no
  /// usable payload exists (construction then opens fresh streams).
  bool try_restore();
  void open_fresh_streams();
  void publish_instruments();  ///< state_mu_ held

  serve::RngService& service_;
  serve::ScrubberOptions opts_;
  obs::MetricsRegistry* metrics_;
  fault::Injector* injector_;
  int backend_index_ = -1;
  Instruments ins_;

  /// Pass fence: serialises run_pass() against itself and against the
  /// service checkpoint hook (prepare locks it, release unlocks — so a
  /// snapshot always lands on a pass boundary with committed cursors).
  std::mutex pass_mu_;

  /// Guards every field below (report() snapshots under it).
  mutable std::mutex state_mu_;
  std::vector<StreamSlot> streams_;
  int tier_ = 0;
  std::uint64_t passes_ = 0;
  std::uint64_t words_ = 0;
  std::uint64_t anomalies_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t feed_failures_ = 0;
  std::uint64_t batteries_ = 0;
  bool anomalous_ = false;
  int consecutive_smoke_ = 0;
  std::string last_battery_;
  int last_passed_ = 0;
  int last_total_ = 0;
  double last_ks_d_ = 0.0;
  double last_ks_p_ = 0.0;
  bool last_ks_valid_ = false;
  std::vector<AnomalyRecord> history_;

  std::atomic<bool> stopping_{false};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::thread thread_;
};

}  // namespace hprng::quality
