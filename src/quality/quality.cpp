#include "quality/quality.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <thread>
#include <utility>

#include "fault/fault.hpp"
#include "serve/backend.hpp"
#include "state/sections.hpp"
#include "state/snapshot.hpp"
#include "stat/battery.hpp"
#include "stat/crush.hpp"
#include "stat/special.hpp"
#include "stat/tests_common.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace hprng::quality {

namespace {

void bump(obs::Counter* c, double v = 1.0) {
  if (c != nullptr) c->add(v);
}

/// prng::Generator over a leased serve stream — what feeds the tier-1/2
/// batteries. Buffered in fixed chunks; a failed fill (shed scrub request,
/// injected fault) latches !ok() and yields zeros, so the battery finishes
/// mechanically and the caller discards the verdict as a feed failure.
/// The partial buffer is deliberately thrown away with the generator at
/// every pass boundary — fetched words are accounted, so resuming from a
/// checkpoint reproduces the exact draw sequence an uninterrupted scrubber
/// would have made (docs/QUALITY.md §6).
class SessionGenerator final : public prng::Generator {
 public:
  SessionGenerator(serve::Session& session, std::string label)
      : session_(session), label_(std::move(label)), buf_(kChunk) {}

  // The battery consumes the family's canonical u32 quality stream: the
  // high 32 bits of every served u64 word, low half discarded — exactly
  // CpuWalkPrng::next_u32() and core::make_quality_generator. The walk
  // families only claim battery quality for that stream (the raw vertex-
  // id low word is structured); splitting both halves out of each word
  // would score a stream the repo never certifies.
  std::uint32_t next_u32() override {
    return static_cast<std::uint32_t>(next_word() >> 32);
  }

  std::uint64_t next_u64() override {
    const std::uint64_t hi = next_word() >> 32;
    return (hi << 32) | (next_word() >> 32);
  }

  [[nodiscard]] std::string name() const override { return label_; }

  [[nodiscard]] std::unique_ptr<prng::Generator> clone_reseeded(
      std::uint64_t) const override {
    HPRNG_CHECK(false, "SessionGenerator: a leased stream cannot reseed");
    return nullptr;
  }

  /// Words actually drawn through the service (the scrub-cursor advance).
  [[nodiscard]] std::uint64_t words_fetched() const { return fetched_; }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  static constexpr std::size_t kChunk = 1024;

  std::uint64_t next_word() {
    if (pos_ == filled_) {
      if (ok_ &&
          session_.fill(std::span<std::uint64_t>(buf_)) == serve::Status::kOk) {
        fetched_ += buf_.size();
      } else {
        ok_ = false;
        std::fill(buf_.begin(), buf_.end(), std::uint64_t{0});
      }
      filled_ = buf_.size();
      pos_ = 0;
    }
    return buf_[pos_++];
  }

  serve::Session& session_;
  std::string label_;
  std::vector<std::uint64_t> buf_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t fetched_ = 0;
  bool ok_ = true;
};

/// Tier-0 smoke statistic 1: byte-frequency chi-square over the pass draw.
double byte_frequency_p(std::span<const std::uint64_t> words) {
  std::vector<double> observed(256, 0.0);
  for (const std::uint64_t w : words) {
    for (int k = 0; k < 8; ++k) {
      observed[(w >> (8 * k)) & 0xFF] += 1.0;
    }
  }
  const double expected_each =
      static_cast<double>(words.size()) * 8.0 / 256.0;
  const std::vector<double> expected(256, expected_each);
  return stat::chi_square_test("byte-freq", observed, expected).p;
}

/// Tier-0 smoke statistic 2: lag-1 serial correlation of the uniform
/// doubles; z = r * sqrt(n-1) is asymptotically standard normal.
double serial_correlation_p(std::span<const std::uint64_t> words) {
  const std::size_t n = words.size();
  if (n < 3) return 1.0;
  std::vector<double> u(n);
  for (std::size_t i = 0; i < n; ++i) {
    u[i] = static_cast<double>(words[i] >> 11) * 0x1.0p-53;
  }
  double mean = 0.0;
  for (const double v : u) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = u[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (u[i + 1] - mean);
  }
  if (den <= 0.0) return 0.0;  // constant stream: maximally suspicious
  const double r = num / den;
  const double z = r * std::sqrt(static_cast<double>(n - 1));
  return stat::normal_two_sided_p(z);
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

void register_catalogue(obs::MetricsRegistry& registry) {
  registry.counter("hprng.quality.passes");
  registry.counter("hprng.quality.words");
  registry.counter("hprng.quality.anomalies");
  registry.counter("hprng.quality.escalations");
  registry.counter("hprng.quality.feed_failures");
  registry.counter("hprng.quality.batteries");
  registry.gauge("hprng.quality.tier");
  registry.gauge("hprng.quality.last_ks_d");
  registry.gauge("hprng.quality.last_ks_p");
  registry.gauge("hprng.quality.pass_ratio");
  registry.gauge("hprng.quality.anomalous");
  registry.gauge("hprng.quality.streams");
}

double QualityReport::pass_ratio() const {
  if (last_total == 0) return 1.0;
  return static_cast<double>(last_passed) / static_cast<double>(last_total);
}

std::string QualityReport::to_json() const {
  std::string out = "{";
  out += "\"backend\":\"";
  json_escape_into(out, backend);
  out += util::strf("\",\"resting_tier\":%d,\"tier\":%d", resting_tier, tier);
  out += util::strf(",\"passes\":%llu,\"words\":%llu",
                    static_cast<unsigned long long>(passes),
                    static_cast<unsigned long long>(words));
  out += util::strf(",\"anomalies\":%llu,\"escalations\":%llu",
                    static_cast<unsigned long long>(anomalies),
                    static_cast<unsigned long long>(escalations));
  out += util::strf(",\"feed_failures\":%llu,\"batteries\":%llu",
                    static_cast<unsigned long long>(feed_failures),
                    static_cast<unsigned long long>(batteries));
  out += util::strf(",\"anomalous\":%s", anomalous ? "true" : "false");
  out += ",\"last_battery\":\"";
  json_escape_into(out, last_battery);
  out += util::strf("\",\"last_passed\":%d,\"last_total\":%d", last_passed,
                    last_total);
  out += util::strf(",\"last_ks_d\":%.17g,\"last_ks_p\":%.17g", last_ks_d,
                    last_ks_p);
  out += util::strf(",\"last_ks_valid\":%s,\"pass_ratio\":%.17g",
                    last_ks_valid ? "true" : "false", pass_ratio());
  out += ",\"streams\":[";
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const StreamReport& s = streams[i];
    if (i != 0) out += ',';
    out += util::strf(
        "{\"lease_id\":%llu,\"words\":%llu,\"freq_p\":%.17g,"
        "\"corr_p\":%.17g,\"adopted\":%s}",
        static_cast<unsigned long long>(s.lease_id),
        static_cast<unsigned long long>(s.words), s.freq_p, s.corr_p,
        s.adopted ? "true" : "false");
  }
  out += "],\"history\":[";
  for (std::size_t i = 0; i < history.size(); ++i) {
    const AnomalyRecord& a = history[i];
    if (i != 0) out += ',';
    out += util::strf("{\"pass\":%llu,\"tier\":%d,\"what\":\"",
                      static_cast<unsigned long long>(a.pass), a.tier);
    json_escape_into(out, a.what);
    out += "\"}";
  }
  out += "]}";
  return out;
}

QualityScrubber::QualityScrubber(serve::RngService& service,
                                 obs::MetricsRegistry* metrics)
    : service_(service),
      opts_(service.options().scrub),
      metrics_(metrics),
      injector_(service.options().injector) {
  HPRNG_CHECK(opts_.streams >= 1, "QualityScrubber: streams >= 1");
  HPRNG_CHECK(opts_.pass_words >= 16, "QualityScrubber: pass_words >= 16");
  HPRNG_CHECK(opts_.tier >= 0 && opts_.tier <= 2,
              "QualityScrubber: tier in [0, 2]");
  HPRNG_CHECK(opts_.battery_scale > 0.0,
              "QualityScrubber: battery_scale > 0");
  HPRNG_CHECK(opts_.escalate_after >= 1,
              "QualityScrubber: escalate_after >= 1");
  tier_ = opts_.tier;

  const std::vector<std::string> names = serve::known_backends();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == service_.options().backend) {
      backend_index_ = static_cast<int>(i);
      break;
    }
  }
  HPRNG_CHECK(backend_index_ >= 0,
              "QualityScrubber: service backend not in known_backends()");

  if (metrics_ != nullptr) {
    register_catalogue(*metrics_);
    ins_.passes = &metrics_->counter("hprng.quality.passes");
    ins_.words = &metrics_->counter("hprng.quality.words");
    ins_.anomalies = &metrics_->counter("hprng.quality.anomalies");
    ins_.escalations = &metrics_->counter("hprng.quality.escalations");
    ins_.feed_failures = &metrics_->counter("hprng.quality.feed_failures");
    ins_.batteries = &metrics_->counter("hprng.quality.batteries");
    ins_.tier = &metrics_->gauge("hprng.quality.tier");
    ins_.last_ks_d = &metrics_->gauge("hprng.quality.last_ks_d");
    ins_.last_ks_p = &metrics_->gauge("hprng.quality.last_ks_p");
    ins_.pass_ratio = &metrics_->gauge("hprng.quality.pass_ratio");
    ins_.anomalous = &metrics_->gauge("hprng.quality.anomalous");
    ins_.streams = &metrics_->gauge("hprng.quality.streams");
  }

  if (!try_restore()) open_fresh_streams();
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    publish_instruments();
  }

  serve::RngService::CheckpointHook hook;
  hook.prepare = [this] { pass_mu_.lock(); };
  hook.save = [this](state::SnapshotWriter& w) { save_state(w); };
  hook.release = [this] { pass_mu_.unlock(); };
  service_.set_checkpoint_hook(std::move(hook));
}

QualityScrubber::~QualityScrubber() {
  stop();
  service_.set_checkpoint_hook({});
}

void QualityScrubber::open_fresh_streams() {
  streams_.resize(static_cast<std::size_t>(opts_.streams));
  for (StreamSlot& slot : streams_) {
    slot.session = service_.open_session();
    slot.session.set_priority(opts_.priority);
    slot.lease_id = slot.session.lease().id;
  }
}

bool QualityScrubber::try_restore() {
  const std::vector<std::string> payloads =
      service_.aux_sections(state::kTagQual);
  if (payloads.empty()) return false;
  const state::Section sec{state::kTagQual, 1, payloads.front()};
  state::SectionReader r(sec);

  const std::string backend = r.get_str();
  const auto backend_index = static_cast<int>(r.get_u32());
  const auto resting = static_cast<int>(r.get_u32());
  const auto tier = static_cast<int>(r.get_u32());
  const std::uint64_t passes = r.get_u64();
  const std::uint64_t words = r.get_u64();
  const std::uint64_t anomalies = r.get_u64();
  const std::uint64_t escalations = r.get_u64();
  const std::uint64_t feed_failures = r.get_u64();
  const std::uint64_t batteries = r.get_u64();
  const bool anomalous = r.get_u32() != 0;
  const auto consecutive = static_cast<int>(r.get_u32());
  const std::string last_battery = r.get_str();
  const auto last_passed = static_cast<int>(r.get_u32());
  const auto last_total = static_cast<int>(r.get_u32());
  const double last_ks_d = r.get_f64();
  const double last_ks_p = r.get_f64();
  const bool last_ks_valid = r.get_u32() != 0;

  const std::uint64_t stream_count = r.get_u64();
  if (!r.ok() || backend != service_.options().backend ||
      backend_index != backend_index_ || stream_count == 0 ||
      stream_count > 4096 || tier < 0 || tier > 2) {
    return false;
  }

  std::vector<StreamSlot> slots(static_cast<std::size_t>(stream_count));
  for (StreamSlot& slot : slots) {
    slot.lease_id = r.get_u64();
    slot.words = r.get_u64();
    slot.freq_p = r.get_f64();
    slot.corr_p = r.get_f64();
  }
  const std::uint64_t history_count = r.get_u64();
  if (!r.ok() || history_count > opts_.history_limit + 4096) return false;
  std::vector<AnomalyRecord> history(
      static_cast<std::size_t>(history_count));
  for (AnomalyRecord& rec : history) {
    rec.pass = r.get_u64();
    rec.tier = static_cast<int>(r.get_u32());
    rec.what = r.get_str();
  }
  if (!r.ok()) return false;

  // Re-claim the scrub leases mid-stream. A lease another client adopted
  // first (or a pruned snapshot) degrades gracefully: that stream restarts
  // on a fresh lease with a zero cursor.
  for (StreamSlot& slot : slots) {
    std::optional<serve::Session> adopted =
        service_.adopt_session(slot.lease_id);
    if (adopted.has_value()) {
      slot.session = *std::move(adopted);
      slot.adopted = true;
    } else {
      slot.session = service_.open_session();
      slot.lease_id = slot.session.lease().id;
      slot.words = 0;
      slot.freq_p = 1.0;
      slot.corr_p = 1.0;
    }
    slot.session.set_priority(opts_.priority);
  }

  std::lock_guard<std::mutex> lk(state_mu_);
  streams_ = std::move(slots);
  opts_.tier = resting;  // the snapshot's policy floor wins on resume
  tier_ = tier;
  passes_ = passes;
  words_ = words;
  anomalies_ = anomalies;
  escalations_ = escalations;
  feed_failures_ = feed_failures;
  batteries_ = batteries;
  anomalous_ = anomalous;
  consecutive_smoke_ = consecutive;
  last_battery_ = last_battery;
  last_passed_ = last_passed;
  last_total_ = last_total;
  last_ks_d_ = last_ks_d;
  last_ks_p_ = last_ks_p;
  last_ks_valid_ = last_ks_valid;
  history_ = std::move(history);
  return true;
}

void QualityScrubber::save_state(state::SnapshotWriter& w) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  w.begin_section(state::kTagQual);
  w.put_str(service_.options().backend);
  w.put_u32(static_cast<std::uint32_t>(backend_index_));
  w.put_u32(static_cast<std::uint32_t>(opts_.tier));
  w.put_u32(static_cast<std::uint32_t>(tier_));
  w.put_u64(passes_);
  w.put_u64(words_);
  w.put_u64(anomalies_);
  w.put_u64(escalations_);
  w.put_u64(feed_failures_);
  w.put_u64(batteries_);
  w.put_u32(anomalous_ ? 1 : 0);
  w.put_u32(static_cast<std::uint32_t>(consecutive_smoke_));
  w.put_str(last_battery_);
  w.put_u32(static_cast<std::uint32_t>(last_passed_));
  w.put_u32(static_cast<std::uint32_t>(last_total_));
  w.put_f64(last_ks_d_);
  w.put_f64(last_ks_p_);
  w.put_u32(last_ks_valid_ ? 1 : 0);
  w.put_u64(streams_.size());
  for (const StreamSlot& slot : streams_) {
    w.put_u64(slot.lease_id);
    w.put_u64(slot.words);
    w.put_f64(slot.freq_p);
    w.put_f64(slot.corr_p);
  }
  w.put_u64(history_.size());
  for (const AnomalyRecord& rec : history_) {
    w.put_u64(rec.pass);
    w.put_u32(static_cast<std::uint32_t>(rec.tier));
    w.put_str(rec.what);
  }
}

QualityScrubber::SmokeResult QualityScrubber::scrub_stream(std::size_t i) {
  SmokeResult out;
  if (injector_ != nullptr) {
    // kQualityFeed: target = stream index. Each stream hits its target
    // exactly once per pass, so plan ordinals are worker-count-invariant.
    const fault::Outcome o = injector_->on_event(
        fault::Site::kQualityFeed, static_cast<int>(i));
    if (o.delay()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(o.delay_seconds));
    }
    if (o.fail()) return out;  // pass draws nothing from this stream
  }
  std::vector<std::uint64_t> buf(opts_.pass_words);
  if (streams_[i].session.fill(buf) != serve::Status::kOk) return out;
  out.fed = true;
  out.freq_p = byte_frequency_p(buf);
  out.corr_p = serial_correlation_p(buf);
  return out;
}

void QualityScrubber::run_pass() {
  std::lock_guard<std::mutex> pass_lk(pass_mu_);
  std::vector<SmokeResult> results(streams_.size());

  const int workers =
      std::clamp(opts_.workers, 1,
                 static_cast<int>(std::max<std::size_t>(streams_.size(), 1)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      results[i] = scrub_stream(i);
    }
  } else {
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < results.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        results[i] = scrub_stream(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers) - 1);
    for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
    worker();
    for (std::thread& t : pool) t.join();
  }

  finalize_pass(results);
}

void QualityScrubber::run_passes(int n) {
  for (int i = 0; i < n; ++i) run_pass();
}

void QualityScrubber::finalize_pass(const std::vector<SmokeResult>& results) {
  const auto push_history = [this](AnomalyRecord rec) {
    history_.push_back(std::move(rec));
    while (history_.size() > opts_.history_limit) {
      history_.erase(history_.begin());
    }
  };

  int battery_tier = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    ++passes_;
    bump(ins_.passes);
    bool smoke_anomalous = false;
    std::string smoke_what;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      StreamSlot& slot = streams_[i];
      if (!results[i].fed) {
        ++feed_failures_;
        bump(ins_.feed_failures);
        continue;
      }
      slot.words += opts_.pass_words;
      words_ += opts_.pass_words;
      bump(ins_.words, static_cast<double>(opts_.pass_words));
      slot.freq_p = results[i].freq_p;
      slot.corr_p = results[i].corr_p;
      if (slot.freq_p < opts_.smoke_p_lo || slot.corr_p < opts_.smoke_p_lo) {
        smoke_anomalous = true;
        if (smoke_what.empty()) {
          smoke_what = util::strf(
              "smoke:stream=%zu freq_p=%.3g corr_p=%.3g", i, slot.freq_p,
              slot.corr_p);
        }
      }
    }
    consecutive_smoke_ = smoke_anomalous ? consecutive_smoke_ + 1 : 0;
    if (consecutive_smoke_ >= opts_.escalate_after && tier_ < 1) {
      tier_ = 1;
      ++escalations_;
      bump(ins_.escalations);
      push_history({passes_, 0, smoke_what});
    }
    battery_tier = tier_;
  }

  // The battery draws through the service, so it runs outside state_mu_
  // (pass_mu_ already serialises passes against each other and against
  // checkpoints).
  if (battery_tier >= 1) {
    std::string what;
    const bool anomaly = run_battery_tier(battery_tier, &what);
    std::lock_guard<std::mutex> lk(state_mu_);
    if (anomaly) {
      ++anomalies_;
      bump(ins_.anomalies);
      push_history({passes_, battery_tier, what});
      if (battery_tier == 1) {
        // Tier-1 anomaly: escalate — next pass runs the Crush tier.
        tier_ = 2;
        ++escalations_;
        bump(ins_.escalations);
      } else {
        anomalous_ = true;  // Crush-tier confirmation; latched
      }
    } else if (!what.empty()) {
      // Feed failure mid-battery: no verdict either way, stay escalated.
    } else {
      tier_ = opts_.tier;  // clean battery: de-escalate to the floor
      consecutive_smoke_ = 0;
    }
  }

  if (injector_ != nullptr) {
    // kQualityVerdict: target = backend registry index, one event per
    // pass — a kFail outcome forces a confirmed anomaly on exactly this
    // backend's scrubber (the chaos-test dial; docs/FAULTS.md).
    const fault::Outcome o = injector_->on_event(
        fault::Site::kQualityVerdict, backend_index_);
    if (o.fail()) {
      std::lock_guard<std::mutex> lk(state_mu_);
      ++anomalies_;
      bump(ins_.anomalies);
      if (tier_ < 2) {
        tier_ = 2;
        ++escalations_;
        bump(ins_.escalations);
      }
      anomalous_ = true;
      push_history({passes_, 2, "fault:verdict"});
    }
  }

  std::lock_guard<std::mutex> lk(state_mu_);
  publish_instruments();
}

bool QualityScrubber::run_battery_tier(int tier, std::string* what) {
  stat::CrushTier params =
      tier >= 2 ? stat::crush_tier() : stat::small_crush_tier();
  params.multiplier *= opts_.battery_scale;
  params.name = tier >= 2 ? "scrub-crush" : "scrub-smallcrush";

  SessionGenerator gen(streams_[0].session,
                       "scrub:" + service_.options().backend);
  const stat::BatteryReport rep =
      stat::run_battery(params.name, stat::crush_battery(params), gen);

  std::lock_guard<std::mutex> lk(state_mu_);
  ++batteries_;
  bump(ins_.batteries);
  streams_[0].words += gen.words_fetched();
  words_ += gen.words_fetched();
  bump(ins_.words, static_cast<double>(gen.words_fetched()));
  if (!gen.ok()) {
    ++feed_failures_;
    bump(ins_.feed_failures);
    *what = "battery:feed-failure";
    return false;  // no verdict — the draw itself was lost
  }
  last_battery_ = rep.battery;
  last_passed_ = rep.num_passed();
  last_total_ = rep.num_total();
  last_ks_d_ = rep.ks_d;
  last_ks_p_ = rep.ks_p;
  last_ks_valid_ = rep.ks_valid;
  const int failed = rep.num_total() - rep.num_passed();
  const bool anomaly =
      (rep.ks_valid && rep.ks_p < opts_.battery_ks_lo) ||
      failed * 4 > rep.num_total();
  if (anomaly) {
    *what = util::strf("battery:%s %d/%d ks_p=%.3g", rep.battery.c_str(),
                       rep.num_passed(), rep.num_total(), rep.ks_p);
  }
  return anomaly;
}

void QualityScrubber::escalate(int tier) {
  HPRNG_CHECK(tier >= 1 && tier <= 2, "QualityScrubber::escalate: tier 1|2");
  std::lock_guard<std::mutex> lk(state_mu_);
  if (tier > tier_) {
    tier_ = tier;
    ++escalations_;
    bump(ins_.escalations);
    publish_instruments();
  }
}

void QualityScrubber::acknowledge() {
  std::lock_guard<std::mutex> lk(state_mu_);
  anomalous_ = false;
  publish_instruments();
}

void QualityScrubber::publish_instruments() {
  if (ins_.tier == nullptr) return;
  ins_.tier->set(static_cast<double>(tier_));
  ins_.last_ks_d->set(last_ks_d_);
  ins_.last_ks_p->set(last_ks_p_);
  ins_.pass_ratio->set(
      last_total_ == 0
          ? 1.0
          : static_cast<double>(last_passed_) /
                static_cast<double>(last_total_));
  ins_.anomalous->set(anomalous_ ? 1.0 : 0.0);
  ins_.streams->set(static_cast<double>(streams_.size()));
}

QualityReport QualityScrubber::report() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  QualityReport out;
  out.backend = service_.options().backend;
  out.resting_tier = opts_.tier;
  out.tier = tier_;
  out.passes = passes_;
  out.words = words_;
  out.anomalies = anomalies_;
  out.escalations = escalations_;
  out.feed_failures = feed_failures_;
  out.batteries = batteries_;
  out.anomalous = anomalous_;
  out.last_battery = last_battery_;
  out.last_passed = last_passed_;
  out.last_total = last_total_;
  out.last_ks_d = last_ks_d_;
  out.last_ks_p = last_ks_p_;
  out.last_ks_valid = last_ks_valid_;
  out.streams.reserve(streams_.size());
  for (const StreamSlot& slot : streams_) {
    out.streams.push_back(
        {slot.lease_id, slot.words, slot.freq_p, slot.corr_p, slot.adopted});
  }
  out.history = history_;
  return out;
}

void QualityScrubber::start() {
  if (thread_.joinable()) return;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] {
    while (!stopping_.load(std::memory_order_acquire)) {
      const auto t0 = std::chrono::steady_clock::now();
      run_pass();
      const double pass_seconds =
          std::chrono::duration_cast<std::chrono::duration<double>>(
              std::chrono::steady_clock::now() - t0)
              .count();
      // Duty-cycle pacing: a pass costing t gets t*(1-d)/d of sleep, so
      // scrubbing consumes ~d of one core and foreground fills keep the
      // rest (docs/QUALITY.md §5).
      const double duty = std::clamp(opts_.duty_cycle, 0.001, 1.0);
      const double sleep_seconds =
          std::clamp(pass_seconds * (1.0 - duty) / duty, 0.001, 2.0);
      std::unique_lock<std::mutex> lk(sleep_mu_);
      sleep_cv_.wait_for(
          lk, std::chrono::duration<double>(sleep_seconds),
          [this] { return stopping_.load(std::memory_order_acquire); });
    }
  });
}

void QualityScrubber::stop() {
  stopping_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  thread_ = std::thread();
}

}  // namespace hprng::quality
