#pragma once

#include <cstdint>

#include "expander/bit_reader.hpp"
#include "expander/gabber_galil.hpp"

namespace hprng::expander {

/// How a 3-bit draw (8 values) selects one of 7 neighbours.
enum class NeighborPolicy : std::uint8_t {
  /// k = b mod 7 — the constant-consumption mapping implied by the paper's
  /// fixed "3 bits per step" budget. Neighbour 0 is selected with
  /// probability 2/8; the walk still mixes (slightly slower). Default.
  kMod7 = 0,
  /// Redraw when b == 7 — exactly uniform, variable bit consumption.
  kRejection = 1,
  /// b == 7 means "stay put" (self loop), making the step an exactly uniform
  /// choice over 8 options on the graph augmented with one more self loop.
  kSevenStays = 2,
};

const char* to_string(NeighborPolicy p);

/// How successive steps traverse the bipartite construction.
enum class WalkMode : std::uint8_t {
  /// Alternate forward/backward maps: a true walk on the undirected
  /// bipartite graph. NOT the default for output quality: a backward step
  /// choosing the same coordinate family as the preceding forward step
  /// inverts it up to the small additive constant, so consecutive steps
  /// nearly cancel and the outputs stay correlated. Kept as an ablation
  /// mode (bench/ablation_walk_mode demonstrates the failure).
  kAlternating = 0,
  /// Always apply the forward map, as Algorithm 1/2's pseudocode literally
  /// iterates f(u, b) — a Margulis-style walk whose composed affine maps
  /// mix rapidly. Default.
  kForwardOnly = 1,
};

const char* to_string(WalkMode m);

/// State of one independent random walk on the full 2^65-node graph —
/// the entire per-thread state of the hybrid PRNG (8 bytes + side bit).
struct WalkState {
  Vertex v;
  Side side = Side::X;
};

/// Advance a walk one step, consuming 3 bits (more under kRejection).
inline void step(WalkState& s, BitReader& bits, NeighborPolicy policy,
                 WalkMode mode) {
  std::uint32_t b = bits.read(3);
  int k;
  switch (policy) {
    case NeighborPolicy::kMod7:
      k = static_cast<int>(b >= 7 ? b - 7 : b);
      break;
    case NeighborPolicy::kRejection:
      // Redraw on 7; if the (overprovisioned) stream still runs dry, fall
      // back to the mod-7 mapping rather than aborting mid-walk.
      while (b == 7 && bits.bits_left() >= 3) b = bits.read(3);
      k = static_cast<int>(b >= 7 ? b - 7 : b);
      break;
    case NeighborPolicy::kSevenStays:
    default:
      if (b == 7) return;  // self loop: position unchanged
      k = static_cast<int>(b);
      break;
  }
  if (mode == WalkMode::kAlternating) {
    s.v = GabberGalilFull::neighbor(s.v, k, s.side);
    s.side = (s.side == Side::X) ? Side::Y : Side::X;
  } else {
    s.v = GabberGalilFull::neighbor_forward(s.v, k);
  }
}

/// Advance a walk `len` steps. Under kRejection the redraw budget is the
/// reader's slack beyond the 3 bits/step floor, so a walk never consumes
/// more than what bits_for_walk() provisioned — an unlucky redraw tail
/// degrades to the mod-7 mapping instead of exhausting the stream.
inline void walk(WalkState& s, BitReader& bits, int len,
                 NeighborPolicy policy, WalkMode mode) {
  if (policy == NeighborPolicy::kRejection) {
    const std::uint64_t floor_bits = 3ull * static_cast<std::uint64_t>(len);
    std::uint64_t slack =
        bits.bits_left() > floor_bits ? bits.bits_left() - floor_bits : 0;
    for (int i = 0; i < len; ++i) {
      std::uint32_t b = bits.read(3);
      while (b == 7 && slack >= 3) {
        b = bits.read(3);
        slack -= 3;
      }
      const int k = static_cast<int>(b >= 7 ? b - 7 : b);
      if (mode == WalkMode::kAlternating) {
        s.v = GabberGalilFull::neighbor(s.v, k, s.side);
        s.side = (s.side == Side::X) ? Side::Y : Side::X;
      } else {
        s.v = GabberGalilFull::neighbor_forward(s.v, k);
      }
    }
    return;
  }
  for (int i = 0; i < len; ++i) step(s, bits, policy, mode);
}

/// Exact bit budget of `len` steps under a constant-consumption policy.
/// (kRejection consumes 24/7 bits per step in expectation; callers using it
/// must overprovision — words_for_walk applies a 1.5x safety factor.)
inline std::uint64_t bits_for_walk(std::uint64_t len, NeighborPolicy policy) {
  const std::uint64_t base = 3 * len;
  return policy == NeighborPolicy::kRejection ? base + (base + 1) / 2 : base;
}

}  // namespace hprng::expander
