#pragma once

#include <cstdint>
#include <vector>

#include "expander/gabber_galil.hpp"
#include "prng/generator.hpp"

namespace hprng::expander {

/// Analysis utilities on explicit small Gabber-Galil instances. These back
/// the property tests ("the graph we walk on really is an expander") and the
/// mixing-time study referenced by DESIGN.md.
class SmallGraphAnalysis {
 public:
  explicit SmallGraphAnalysis(std::uint32_t m);

  /// Number of vertices per side (m^2).
  [[nodiscard]] std::uint64_t n() const { return g_.side_size(); }
  [[nodiscard]] const GabberGalilSmall& graph() const { return g_; }

  /// Second singular value of the normalised bipartite adjacency B/d,
  /// computed by power iteration on (B^T B)/d^2 deflated against the
  /// all-ones vector. For an expander this is bounded away from 1.
  [[nodiscard]] double second_singular_value(int iters = 200) const;

  /// Monte-Carlo lower-bound estimate of the edge expansion: samples random
  /// vertex subsets of each tested size, returns the minimum observed
  /// |E(U, ~U)| / |U|. (A sampled minimum is an upper bound on alpha(G);
  /// for the test suite we check it stays above the Gabber-Galil constant.)
  [[nodiscard]] double sampled_edge_expansion(prng::Generator& rng,
                                              int num_samples = 200) const;

  /// Total-variation distance between the distribution of an alternating
  /// walk of length `steps` started at vertex 0 and the uniform distribution
  /// over the side the walk ends on. Exact (evolves the full distribution).
  [[nodiscard]] double tv_distance_after(int steps) const;

  /// Degree-regularity check: true iff every vertex has out-degree 7 in the
  /// forward direction and the backward maps invert the forward maps.
  [[nodiscard]] bool check_regular_and_invertible() const;

 private:
  /// Apply one forward transition of the walk operator to a distribution
  /// over side X (result over side Y), or backward for Y -> X.
  void apply_step(const std::vector<double>& in, std::vector<double>& out,
                  Side from) const;

  GabberGalilSmall g_;
};

}  // namespace hprng::expander
