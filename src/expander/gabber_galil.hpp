#pragma once

#include <cstdint>

namespace hprng::expander {

/// A vertex of the Gabber-Galil expander: a pair (x, y) in Z_m x Z_m.
/// For the full-size graph of the paper m = 2^32, so a vertex is exactly one
/// 64-bit word — the value the PRNG emits.
struct Vertex {
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  [[nodiscard]] std::uint64_t id() const {
    return (static_cast<std::uint64_t>(x) << 32) | y;
  }
  static Vertex from_id(std::uint64_t id) {
    return {static_cast<std::uint32_t>(id >> 32),
            static_cast<std::uint32_t>(id)};
  }
  friend bool operator==(const Vertex&, const Vertex&) = default;
};

/// Which side of the bipartition a walk currently occupies. The Gabber-Galil
/// construction is bipartite (X -> Y); edge k from X to Y applies the affine
/// map below, and the step back from Y to X applies its inverse.
enum class Side : std::uint8_t { X = 0, Y = 1 };

/// The 7-regular Gabber-Galil expander on n = 2 m^2 vertices with m = 2^32
/// (the paper's n = 2^65 instance). All arithmetic is mod 2^32, i.e. natural
/// uint32 wraparound, which is why this graph is *implicit*: neighbours are
/// computed, never stored.
///
/// Neighbours of (x, y) in X, per Gabber & Galil (FOCS'79) as quoted in the
/// paper: (x, y), (x, 2x+y), (x, 2x+y+1), (x, 2x+y+2),
///        (x+2y, y), (x+2y+1, y), (x+2y+2, y).
struct GabberGalilFull {
  static constexpr int kDegree = 7;

  /// k-th neighbour in the forward (X -> Y) direction. Preconditions:
  /// 0 <= k < 7 (checked in debug by the walk layer, hot path here).
  static Vertex neighbor_forward(Vertex v, int k) {
    switch (k) {
      case 0: return v;
      case 1: return {v.x, 2 * v.x + v.y};
      case 2: return {v.x, 2 * v.x + v.y + 1};
      case 3: return {v.x, 2 * v.x + v.y + 2};
      case 4: return {v.x + 2 * v.y, v.y};
      case 5: return {v.x + 2 * v.y + 1, v.y};
      default: return {v.x + 2 * v.y + 2, v.y};
    }
  }

  /// k-th neighbour in the backward (Y -> X) direction: the inverse affine
  /// maps, so that the alternating walk is a genuine walk on the undirected
  /// bipartite graph.
  static Vertex neighbor_backward(Vertex v, int k) {
    switch (k) {
      case 0: return v;
      case 1: return {v.x, v.y - 2 * v.x};
      case 2: return {v.x, v.y - 2 * v.x - 1};
      case 3: return {v.x, v.y - 2 * v.x - 2};
      case 4: return {v.x - 2 * v.y, v.y};
      case 5: return {v.x - 2 * v.y - 1, v.y};
      default: return {v.x - 2 * v.y - 2, v.y};
    }
  }

  static Vertex neighbor(Vertex v, int k, Side side) {
    return side == Side::X ? neighbor_forward(v, k) : neighbor_backward(v, k);
  }
};

/// The same construction with an explicit small modulus m, used for the
/// analysis suite (spectral gap, mixing time, degree/expansion tests) where
/// we need graphs small enough to enumerate.
class GabberGalilSmall {
 public:
  static constexpr int kDegree = 7;

  explicit GabberGalilSmall(std::uint32_t m) : m_(m) {}

  [[nodiscard]] std::uint32_t m() const { return m_; }
  /// Vertices per side (m^2); the bipartite graph has 2 m^2 vertices total.
  [[nodiscard]] std::uint64_t side_size() const {
    return static_cast<std::uint64_t>(m_) * m_;
  }

  [[nodiscard]] Vertex neighbor_forward(Vertex v, int k) const {
    const std::uint64_t x = v.x, y = v.y;
    switch (k) {
      case 0: return v;
      case 1: return {v.x, mod(2 * x + y)};
      case 2: return {v.x, mod(2 * x + y + 1)};
      case 3: return {v.x, mod(2 * x + y + 2)};
      case 4: return {mod(x + 2 * y), v.y};
      case 5: return {mod(x + 2 * y + 1), v.y};
      default: return {mod(x + 2 * y + 2), v.y};
    }
  }

  [[nodiscard]] Vertex neighbor_backward(Vertex v, int k) const {
    const std::uint64_t x = v.x, y = v.y;
    const std::uint64_t mm = m_;
    switch (k) {
      case 0: return v;
      case 1: return {v.x, mod(y + 2 * (mm - mod(x)) )};
      case 2: return {v.x, mod(y + 2 * (mm - mod(x)) + 2 * mm - 1)};
      case 3: return {v.x, mod(y + 2 * (mm - mod(x)) + 2 * mm - 2)};
      case 4: return {mod(x + 2 * (mm - mod(y))), v.y};
      case 5: return {mod(x + 2 * (mm - mod(y)) + 2 * mm - 1), v.y};
      default: return {mod(x + 2 * (mm - mod(y)) + 2 * mm - 2), v.y};
    }
  }

  [[nodiscard]] Vertex neighbor(Vertex v, int k, Side side) const {
    return side == Side::X ? neighbor_forward(v, k) : neighbor_backward(v, k);
  }

  /// Linear index of a vertex within one side: x * m + y.
  [[nodiscard]] std::uint64_t index(Vertex v) const {
    return static_cast<std::uint64_t>(v.x) * m_ + v.y;
  }
  [[nodiscard]] Vertex vertex(std::uint64_t idx) const {
    return {static_cast<std::uint32_t>(idx / m_),
            static_cast<std::uint32_t>(idx % m_)};
  }

 private:
  [[nodiscard]] std::uint32_t mod(std::uint64_t v) const {
    return static_cast<std::uint32_t>(v % m_);
  }

  std::uint32_t m_;
};

/// Gabber-Galil edge-expansion constant alpha(G) = (2 - sqrt(3)) / 2.
inline constexpr double kGabberGalilExpansion = 0.1339745962155613;

}  // namespace hprng::expander
