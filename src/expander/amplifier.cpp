#include "expander/amplifier.hpp"

#include <vector>

#include "expander/bit_reader.hpp"
#include "expander/gabber_galil.hpp"
#include "expander/walk.hpp"
#include "prng/splitmix64.hpp"
#include "util/check.hpp"

namespace hprng::expander {

bool in_bad_set(std::uint64_t seed, double beta) {
  // Threshold a strong mix of the seed: a pseudo-random density-beta set.
  const double u =
      static_cast<double>(prng::splitmix64_mix(seed) >> 11) * 0x1.0p-53;
  return u < beta;
}

AmplifierResult amplify_independent(prng::Generator& rng, double beta,
                                    int k, int trials) {
  HPRNG_CHECK(k >= 1 && trials >= 1, "amplifier needs k, trials >= 1");
  AmplifierResult r;
  r.bits_per_trial = 64ull * static_cast<std::uint64_t>(k);
  std::uint64_t bad_samples = 0;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    int bad = 0;
    for (int i = 0; i < k; ++i) {
      if (in_bad_set(rng.next_u64(), beta)) ++bad;
    }
    bad_samples += static_cast<std::uint64_t>(bad);
    if (2 * bad > k) ++failures;
  }
  r.failure_rate = static_cast<double>(failures) / trials;
  r.observed_beta = static_cast<double>(bad_samples) /
                    (static_cast<double>(trials) * k);
  return r;
}

AmplifierResult amplify_walk(prng::Generator& rng, double beta, int k,
                             int steps_per_sample, int trials) {
  HPRNG_CHECK(k >= 1 && trials >= 1, "amplifier needs k, trials >= 1");
  HPRNG_CHECK(steps_per_sample >= 1, "need at least one step per sample");
  AmplifierResult r;
  const std::uint64_t walk_bits =
      3ull * static_cast<std::uint64_t>(steps_per_sample) *
      static_cast<std::uint64_t>(k - 1);
  r.bits_per_trial = 64 + walk_bits;

  const std::uint64_t words = BitReader::words_needed(walk_bits, 1);
  std::vector<std::uint32_t> bin(words);
  std::uint64_t bad_samples = 0;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    WalkState s{Vertex::from_id(rng.next_u64()), Side::X};
    for (auto& w : bin) w = rng.next_u32();
    BitReader bits{std::span<const std::uint32_t>(bin)};
    int bad = in_bad_set(s.v.id(), beta) ? 1 : 0;
    for (int i = 1; i < k; ++i) {
      walk(s, bits, steps_per_sample, NeighborPolicy::kMod7,
           WalkMode::kForwardOnly);
      if (in_bad_set(s.v.id(), beta)) ++bad;
    }
    bad_samples += static_cast<std::uint64_t>(bad);
    if (2 * bad > k) ++failures;
  }
  r.failure_rate = static_cast<double>(failures) / trials;
  r.observed_beta = static_cast<double>(bad_samples) /
                    (static_cast<double>(trials) * k);
  return r;
}

}  // namespace hprng::expander
