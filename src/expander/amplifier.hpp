#pragma once

#include <cstdint>

#include "prng/generator.hpp"

namespace hprng::expander {

/// Probability amplification by expander walks (the Sec. IV-C connection,
/// cf. Motwani & Raghavan [21], Hoory-Linial-Wigderson [11]).
///
/// Model: a randomized procedure errs exactly when its 64-bit seed lands in
/// a "bad set" B of density beta < 1/2 (membership is a pseudo-random
/// indicator so the experiment is reproducible). Running the procedure k
/// times and taking a majority vote drives the error down exponentially in
/// k — but k independent runs need 64 k fresh bits, while k samples read
/// off one expander walk need 64 + 3 * steps * (k - 1): the walk *recycles*
/// randomness, which is the theoretical seed of the paper's construction.
struct AmplifierResult {
  /// Fraction of trials whose majority vote landed bad.
  double failure_rate = 0.0;
  /// Random bits consumed per trial.
  std::uint64_t bits_per_trial = 0;
  /// Single-sample bad probability actually observed (sanity: ~beta).
  double observed_beta = 0.0;
};

/// Majority over k independent 64-bit seeds.
AmplifierResult amplify_independent(prng::Generator& rng, double beta,
                                    int k, int trials);

/// Majority over k positions of one expander walk, `steps_per_sample`
/// steps apart (3 bits each).
AmplifierResult amplify_walk(prng::Generator& rng, double beta, int k,
                             int steps_per_sample, int trials);

/// The pseudo-random bad-set indicator (exposed for tests).
bool in_bad_set(std::uint64_t seed, double beta);

}  // namespace hprng::expander
