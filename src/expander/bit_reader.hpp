#pragma once

#include <cstdint>
#include <span>

#include "util/check.hpp"

namespace hprng::expander {

/// Sequential reader of small bit groups from a pre-generated word buffer —
/// the device-side view of the `bin` stream the host feeds (Algorithms 1/2:
/// `b(u) = bin(t) & (111 << i*3)`). Words are consumed little-end first.
class BitReader {
 public:
  BitReader() = default;
  explicit BitReader(std::span<const std::uint32_t> words) : words_(words) {}

  /// Read `n` bits (1..24). Returns them right-aligned. Reading past the end
  /// of the buffer is a contract violation: the feeder sizing is exact.
  std::uint32_t read(int n) {
    HPRNG_CHECK(n >= 1 && n <= 24, "BitReader::read supports 1..24 bits");
    if (avail_ < n) refill();
    HPRNG_CHECK(avail_ >= n, "bit stream exhausted");
    const std::uint32_t v = static_cast<std::uint32_t>(acc_) &
                            ((1u << n) - 1u);
    acc_ >>= n;
    avail_ -= n;
    return v;
  }

  /// Bits still readable (buffered plus unconsumed words).
  [[nodiscard]] std::uint64_t bits_left() const {
    return static_cast<std::uint64_t>(avail_) +
           32ull * (words_.size() - pos_);
  }

  /// Words needed to serve `draws` reads of `bits_per_draw` bits through this
  /// reader (used by the host feeder to size buffers exactly).
  static std::uint64_t words_needed(std::uint64_t draws, int bits_per_draw) {
    return (draws * static_cast<std::uint64_t>(bits_per_draw) + 31) / 32;
  }

 private:
  void refill() {
    while (avail_ <= 32 && pos_ < words_.size()) {
      acc_ |= static_cast<std::uint64_t>(words_[pos_++]) << avail_;
      avail_ += 32;
    }
  }

  std::span<const std::uint32_t> words_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int avail_ = 0;
};

}  // namespace hprng::expander
