#include "expander/analysis.hpp"

#include <cmath>
#include <cstdlib>
#include <numeric>

#include "util/check.hpp"

namespace hprng::expander {

SmallGraphAnalysis::SmallGraphAnalysis(std::uint32_t m) : g_(m) {
  HPRNG_CHECK(m >= 2 && m <= 256, "analysis instances must satisfy 2<=m<=256");
}

void SmallGraphAnalysis::apply_step(const std::vector<double>& in,
                                    std::vector<double>& out,
                                    Side from) const {
  const std::uint64_t n = g_.side_size();
  out.assign(n, 0.0);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (in[i] == 0.0) continue;
    const double mass = in[i] / GabberGalilSmall::kDegree;
    const Vertex v = g_.vertex(i);
    for (int k = 0; k < GabberGalilSmall::kDegree; ++k) {
      out[g_.index(g_.neighbor(v, k, from))] += mass;
    }
  }
}

double SmallGraphAnalysis::second_singular_value(int iters) const {
  const std::uint64_t n = g_.side_size();
  // Power iteration on M = (B^T B)/d^2 where B is the X->Y biadjacency.
  // M's top eigenvector is all-ones (eigenvalue 1); deflate it and iterate.
  std::vector<double> v(n), tmp(n), w(n);
  // Deterministic non-uniform start.
  for (std::uint64_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7 * static_cast<double>(i + 1)) + 1e-3;
  }
  auto deflate = [&](std::vector<double>& u) {
    const double mean =
        std::accumulate(u.begin(), u.end(), 0.0) / static_cast<double>(n);
    for (auto& x : u) x -= mean;
  };
  auto normalize = [&](std::vector<double>& u) {
    double norm2 = 0;
    for (double x : u) norm2 += x * x;
    const double inv = 1.0 / std::sqrt(norm2);
    for (auto& x : u) x *= inv;
    return std::sqrt(norm2);
  };
  deflate(v);
  normalize(v);
  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    apply_step(v, tmp, Side::X);   // tmp = (B/d)   v
    apply_step(tmp, w, Side::Y);   // w   = (B^T/d) tmp
    deflate(w);
    lambda = normalize(w);
    v.swap(w);
  }
  // lambda approximates sigma_2^2; return sigma_2.
  return std::sqrt(lambda);
}

double SmallGraphAnalysis::sampled_edge_expansion(prng::Generator& rng,
                                                  int num_samples) const {
  const std::uint64_t n_side = g_.side_size();
  const std::uint64_t n_total = 2 * n_side;
  double min_ratio = static_cast<double>(GabberGalilSmall::kDegree);
  // Membership bitmaps: [0, n_side) = side X, [n_side, 2 n_side) = side Y.
  std::vector<char> in_u(n_total);
  for (int s = 0; s < num_samples; ++s) {
    // Random subset size in [1, n_total/2].
    const std::uint64_t size = 1 + rng.next_below(n_total / 2);
    std::fill(in_u.begin(), in_u.end(), 0);
    std::uint64_t placed = 0;
    while (placed < size) {
      const std::uint64_t pick = rng.next_below(n_total);
      if (!in_u[pick]) {
        in_u[pick] = 1;
        ++placed;
      }
    }
    // Count boundary edges: iterate over X-side vertices' forward edges
    // (each undirected edge appears exactly once this way).
    std::uint64_t cut = 0;
    for (std::uint64_t i = 0; i < n_side; ++i) {
      const Vertex v = g_.vertex(i);
      for (int k = 0; k < GabberGalilSmall::kDegree; ++k) {
        const std::uint64_t j = n_side + g_.index(g_.neighbor_forward(v, k));
        if (in_u[i] != in_u[j]) ++cut;
      }
    }
    min_ratio = std::min(
        min_ratio, static_cast<double>(cut) / static_cast<double>(size));
  }
  return min_ratio;
}

double SmallGraphAnalysis::tv_distance_after(int steps) const {
  const std::uint64_t n = g_.side_size();
  std::vector<double> dist(n, 0.0), next;
  dist[0] = 1.0;  // start at vertex (0,0) on side X
  Side side = Side::X;
  for (int s = 0; s < steps; ++s) {
    apply_step(dist, next, side);
    dist.swap(next);
    side = side == Side::X ? Side::Y : Side::X;
  }
  const double uniform = 1.0 / static_cast<double>(n);
  double tv = 0.0;
  for (double p : dist) tv += std::abs(p - uniform);
  return tv / 2.0;
}

bool SmallGraphAnalysis::check_regular_and_invertible() const {
  const std::uint64_t n = g_.side_size();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Vertex v = g_.vertex(i);
    for (int k = 0; k < GabberGalilSmall::kDegree; ++k) {
      const Vertex fwd = g_.neighbor_forward(v, k);
      const Vertex back = g_.neighbor_backward(fwd, k);
      if (!(back == v)) return false;
    }
  }
  return true;
}

}  // namespace hprng::expander
