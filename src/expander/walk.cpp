#include "expander/walk.hpp"

namespace hprng::expander {

const char* to_string(NeighborPolicy p) {
  switch (p) {
    case NeighborPolicy::kMod7: return "mod7";
    case NeighborPolicy::kRejection: return "rejection";
    case NeighborPolicy::kSevenStays: return "seven-stays";
  }
  return "?";
}

const char* to_string(WalkMode m) {
  switch (m) {
    case WalkMode::kAlternating: return "alternating";
    case WalkMode::kForwardOnly: return "forward-only";
  }
  return "?";
}

}  // namespace hprng::expander
