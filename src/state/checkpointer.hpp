#pragma once

// state::BackgroundCheckpointer — periodic snapshot driver (docs/STATE.md §6).
//
// Owns one thread that invokes a caller-supplied tick (normally
// `service.checkpoint(path)`) every `interval`, counting successes and
// failures. The tick runs on the checkpointer's thread, so it must be
// safe to call concurrently with traffic — RngService::checkpoint() is
// (it quiesces via pause()/resume() internally). Stop order matters:
// destroy (or stop()) the checkpointer *before* the service it captures.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace hprng::state {

class BackgroundCheckpointer {
 public:
  /// Starts ticking immediately; the first tick fires after one interval.
  BackgroundCheckpointer(std::chrono::milliseconds interval,
                         std::function<bool()> tick)
      : interval_(interval), tick_(std::move(tick)) {
    thread_ = std::thread([this] { run(); });
  }

  ~BackgroundCheckpointer() { stop(); }

  BackgroundCheckpointer(const BackgroundCheckpointer&) = delete;
  BackgroundCheckpointer& operator=(const BackgroundCheckpointer&) = delete;

  /// Stop and join. Idempotent; no tick runs after stop() returns.
  void stop() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stop_) return;
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint64_t runs() const { return runs_.load(); }
  [[nodiscard]] std::uint64_t failures() const { return failures_.load(); }

 private:
  void run() {
    std::unique_lock<std::mutex> lk(mu_);
    while (!stop_) {
      if (cv_.wait_for(lk, interval_, [this] { return stop_; })) break;
      lk.unlock();
      const bool ok = tick_();
      runs_.fetch_add(1);
      if (!ok) failures_.fetch_add(1);
      lk.lock();
    }
  }

  std::chrono::milliseconds interval_;
  std::function<bool()> tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::thread thread_;
};

}  // namespace hprng::state
