#include "state/snapshot.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/file.hpp"

namespace hprng::state {

namespace {

// Header: 8-byte magic + u32 format version + u32 section count.
constexpr std::size_t kHeaderBytes = 8 + 4 + 4;
// Section header: u32 tag + u32 version + u64 payload length.
constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8;

void append_u32(std::string& buf, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf.append(b, 4);
}

void append_u64(std::string& buf, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  buf.append(b, 8);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

void patch_u64(std::string& buf, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  // Table computed on first use; thread-safe under C++11 static init.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string tag_name(std::uint32_t tag) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    out += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return out;
}

SnapshotWriter::SnapshotWriter() {
  buf_.append(kMagic, sizeof(kMagic));
  append_u32(buf_, kFormatVersion);
  append_u32(buf_, 0);  // section count, patched by finish()
}

void SnapshotWriter::begin_section(std::uint32_t tag, std::uint32_t version) {
  if (open_) end_section();
  section_start_ = buf_.size();
  append_u32(buf_, tag);
  append_u32(buf_, version);
  append_u64(buf_, 0);  // payload length, patched by end_section()
  open_ = true;
}

void SnapshotWriter::end_section() {
  HPRNG_CHECK(open_, "SnapshotWriter::end_section: no open section");
  const std::size_t payload_at = section_start_ + kSectionHeaderBytes;
  const std::size_t payload_len = buf_.size() - payload_at;
  patch_u64(buf_, section_start_ + 8, payload_len);
  // The CRC covers the section header too, so a flipped tag/version/length
  // byte is as detectable as a flipped payload byte.
  const std::string_view covered(buf_.data() + section_start_,
                                 kSectionHeaderBytes + payload_len);
  append_u32(buf_, crc32(covered));
  ++section_count_;
  open_ = false;
}

void SnapshotWriter::put_u32(std::uint32_t v) {
  HPRNG_CHECK(open_, "SnapshotWriter::put_u32: no open section");
  append_u32(buf_, v);
}

void SnapshotWriter::put_u64(std::uint64_t v) {
  HPRNG_CHECK(open_, "SnapshotWriter::put_u64: no open section");
  append_u64(buf_, v);
}

void SnapshotWriter::put_f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void SnapshotWriter::put_str(std::string_view s) {
  put_u64(s.size());
  buf_.append(s.data(), s.size());
}

void SnapshotWriter::put_raw(std::string_view s) {
  HPRNG_CHECK(open_, "SnapshotWriter::put_raw: no open section");
  buf_.append(s.data(), s.size());
}

std::string SnapshotWriter::finish() {
  if (open_) end_section();
  std::string out = buf_;
  for (int i = 0; i < 4; ++i) {
    out[12 + static_cast<std::size_t>(i)] =
        static_cast<char>((section_count_ >> (8 * i)) & 0xFF);
  }
  return out;
}

bool SnapshotWriter::write_file(const std::string& path, std::string* error,
                                fault::Injector* injector, int target) {
  if (injector != nullptr) {
    const fault::Outcome o =
        injector->on_event(fault::Site::kCheckpointWrite, target);
    if (o.delay()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(o.delay_seconds));
    }
    if (o.fail()) {
      if (error != nullptr) {
        *error = "injected checkpoint_write fault for " + path;
      }
      return false;
    }
  }
  const std::string image = finish();
  const std::string tmp = path + ".tmp";
  if (!util::write_file(tmp, image)) {
    if (error != nullptr) *error = "cannot write " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " -> " + path;
    return false;
  }
  return true;
}

std::optional<Snapshot> Snapshot::parse(std::string data, std::string* error) {
  const auto reject = [&](const std::string& why) -> std::optional<Snapshot> {
    if (error != nullptr) *error = "snapshot rejected: " + why;
    return std::nullopt;
  };
  if (data.size() < kHeaderBytes) return reject("shorter than the header");
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic (not a HPRNGSNP file)");
  }
  const std::uint32_t version = load_u32(data.data() + 8);
  if (version != kFormatVersion) {
    return reject("format version " + std::to_string(version) +
                  " unsupported (this build reads version " +
                  std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = load_u32(data.data() + 12);

  Snapshot snap;
  snap.data_ = std::make_unique<std::string>(std::move(data));
  const std::string& d = *snap.data_;
  std::size_t pos = kHeaderBytes;
  for (std::uint32_t s = 0; s < count; ++s) {
    if (d.size() - pos < kSectionHeaderBytes) {
      return reject("truncated section header (section " + std::to_string(s) +
                    ")");
    }
    const std::size_t header_at = pos;
    Section sec;
    sec.tag = load_u32(d.data() + pos);
    sec.version = load_u32(d.data() + pos + 4);
    const std::uint64_t len = load_u64(d.data() + pos + 8);
    pos += kSectionHeaderBytes;
    if (len > d.size() - pos || d.size() - pos - len < 4) {
      return reject("truncated payload in section `" + tag_name(sec.tag) +
                    "`");
    }
    sec.payload = std::string_view(d.data() + pos, len);
    pos += len;
    const std::uint32_t want = load_u32(d.data() + pos);
    pos += 4;
    const std::string_view covered(d.data() + header_at,
                                   kSectionHeaderBytes + len);
    if (crc32(covered) != want) {
      return reject("CRC mismatch in section `" + tag_name(sec.tag) + "`");
    }
    snap.sections_.push_back(sec);
  }
  if (pos != d.size()) return reject("trailing bytes after the last section");
  return snap;
}

std::optional<Snapshot> Snapshot::read_file(const std::string& path,
                                            std::string* error,
                                            fault::Injector* injector,
                                            int target) {
  if (injector != nullptr) {
    const fault::Outcome o =
        injector->on_event(fault::Site::kRestoreRead, target);
    if (o.delay()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(o.delay_seconds));
    }
    if (o.fail()) {
      if (error != nullptr) {
        *error = "injected restore_read fault for " + path;
      }
      return std::nullopt;
    }
  }
  std::string data;
  if (!util::read_file(path, &data)) {
    if (error != nullptr) *error = "cannot read " + path;
    return std::nullopt;
  }
  return parse(std::move(data), error);
}

const Section* Snapshot::find(std::uint32_t tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

std::vector<const Section*> Snapshot::find_all(std::uint32_t tag) const {
  std::vector<const Section*> out;
  for (const Section& s : sections_) {
    if (s.tag == tag) out.push_back(&s);
  }
  return out;
}

bool SectionReader::take(std::size_t n, const char** out) {
  if (!ok_) return false;
  if (data_.size() - pos_ < n) {
    fail("read past end of section");
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

void SectionReader::fail(const std::string& why) {
  if (!ok_) return;  // keep the first diagnostic
  ok_ = false;
  error_ = "section `" + tag_name(tag_) + "`: " + why;
}

std::uint32_t SectionReader::get_u32() {
  const char* p = nullptr;
  return take(4, &p) ? load_u32(p) : 0;
}

std::uint64_t SectionReader::get_u64() {
  const char* p = nullptr;
  return take(8, &p) ? load_u64(p) : 0;
}

double SectionReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SectionReader::get_str() {
  const std::uint64_t len = get_u64();
  if (!ok_) return {};
  if (len > data_.size() - pos_) {
    fail("string length overruns the section");
    return {};
  }
  const char* p = nullptr;
  take(static_cast<std::size_t>(len), &p);
  return std::string(p, static_cast<std::size_t>(len));
}

}  // namespace hprng::state
