#pragma once

// Canonical section tags of the service snapshot (docs/STATE.md §4,
// docs/BACKENDS.md §5). Declared here — next to the container format —
// rather than in the serve layer, so the normative docs, the writer
// (RngService::checkpoint) and external inspection tools all name one
// set of constants. docs_lint_test verifies every FourCC documented in
// BACKENDS.md resolves to a `fourcc("…")` literal under src/state/.

#include <cstdint>

#include "state/snapshot.hpp"

namespace hprng::state {

/// Self-describing raw-JSON preamble; always the first section.
inline constexpr std::uint32_t kTagMeta = fourcc("META");
/// The full serve::ServiceOptions echo restore validates against.
inline constexpr std::uint32_t kTagOpts = fourcc("OPTS");
/// Lease inventory: the never-reused id counter, per-shard slot state,
/// and the live-lease table (the adoptable set after a restore).
inline constexpr std::uint32_t kTagLeas = fourcc("LEAS");
/// Per-shard health (ejected flag + consecutive-failure count).
inline constexpr std::uint32_t kTagHlth = fourcc("HLTH");
/// One per shard: backend kind label + the backend's stream state
/// (per-backend payload layouts in docs/BACKENDS.md §5).
inline constexpr std::uint32_t kTagShrd = fourcc("SHRD");
/// serve_net sidecar (`<snapshot>.net`, docs/NETWORK.md §8): the listen
/// endpoints + server options a rolling restart re-binds without having
/// the flags repeated on the restart command line.
inline constexpr std::uint32_t kTagNetc = fourcc("NETC");
/// Quality-scrubber state (docs/QUALITY.md §6): scrub cursors, escalation
/// tier and the anomaly history, so continuous scrubbing resumes exactly
/// where the snapshot left it. Written through the service's checkpoint
/// hook; absent when no scrubber is attached.
inline constexpr std::uint32_t kTagQual = fourcc("QUAL");
/// Tenant QoS state (docs/QOS.md §6): the quantum/top-K knobs, the
/// default policy, and one record per known tenant — effective policy,
/// settled token-bucket level, quota charge, per-tenant counters and the
/// tenant's lease ids — so rate limits and quotas survive
/// checkpoint/restore bit-exactly. Self-contained: snapshots without a
/// TENQ section restore with default tenancy.
inline constexpr std::uint32_t kTagTenq = fourcc("TENQ");

}  // namespace hprng::state
