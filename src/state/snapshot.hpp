#pragma once

// hprng::state — versioned, self-describing snapshots (docs/STATE.md).
//
// The paper's on-demand property makes the whole hybrid pipeline
// checkpointable: every walk position is an explicit vertex, every feed
// cursor an explicit counter (Algorithm 2 resumes GetNextRand() from
// stored state). This library is the container format that serialises
// that state — a small sectioned binary file with a JSON preamble — plus
// the bounded-cursor reader that restores it without ever aborting on
// malformed input.
//
// Format (normative spec in docs/STATE.md):
//
//   header   = magic "HPRNGSNP" | u32 format_version | u32 section_count
//   section  = u32 tag (FourCC) | u32 section_version | u64 payload_len
//            | payload bytes | u32 crc32(section header + payload)
//
// All integers little-endian. The first section of every service snapshot
// is a "META" section whose payload is human-readable JSON describing the
// file (self-describing: `head -c 512 file` tells you what it is). Readers
// reject unknown format versions, bad magic, truncated sections and CRC
// mismatches with a diagnostic — corruption can never yield a partial
// restore.
//
// Fault hooks: file writes consult fault::Site::kCheckpointWrite and file
// reads consult fault::Site::kRestoreRead, so chaos tests can fail either
// side deterministically (docs/FAULTS.md).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"

namespace hprng::state {

/// The format version this build writes and the only one it restores.
/// Bump on any layout change; readers hard-reject other versions
/// (docs/STATE.md §3 — snapshots are short-lived operational artifacts,
/// not archives, so there is no cross-version migration path).
inline constexpr std::uint32_t kFormatVersion = 1;

/// File magic, first 8 bytes of every snapshot.
inline constexpr char kMagic[8] = {'H', 'P', 'R', 'N', 'G', 'S', 'N', 'P'};

/// CRC-32 (IEEE 802.3, poly 0xEDB88320, reflected) of a byte range.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Four-character section tag, e.g. fourcc("META").
[[nodiscard]] constexpr std::uint32_t fourcc(const char (&tag)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(tag[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(tag[3])) << 24;
}

/// Decode a FourCC back to printable text for diagnostics.
[[nodiscard]] std::string tag_name(std::uint32_t tag);

/// Serialises a snapshot: begin_section / scalar appends / end_section,
/// then bytes() or write_file(). Scalars are little-endian; strings and
/// byte blobs are u64-length-prefixed. The writer itself cannot fail —
/// only write_file() can (I/O or an injected checkpoint_write fault).
class SnapshotWriter {
 public:
  SnapshotWriter();

  /// Open a section. Sections cannot nest; the previous one (if any) is
  /// finalised by the next begin_section()/finish() call via end_section.
  void begin_section(std::uint32_t tag, std::uint32_t version = 1);
  void end_section();

  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  /// u64 length + raw bytes.
  void put_str(std::string_view s);
  /// Raw bytes, no length prefix — for whole-payload text sections (META's
  /// JSON preamble stays greppable in the binary file).
  void put_raw(std::string_view s);

  /// Finalise the open section (if any) and return the complete file
  /// image, header section-count patched.
  [[nodiscard]] std::string finish();

  /// finish() + atomic write: the image lands at `path + ".tmp"` first and
  /// is renamed over `path`, so a crash or injected fault never leaves a
  /// half-written snapshot under the final name. If `injector` is given,
  /// one fault::Site::kCheckpointWrite event is consulted per call; a kFail
  /// outcome fails the write before any bytes are spilled (kDelay sleeps
  /// for the wall-clock duration — checkpointing is a host-side op).
  bool write_file(const std::string& path, std::string* error = nullptr,
                  fault::Injector* injector = nullptr, int target = 0);

 private:
  std::string buf_;
  std::size_t section_start_ = 0;  // offset of open section header, 0 = none
  std::uint32_t section_count_ = 0;
  bool open_ = false;
};

/// One parsed (and CRC-verified) section of a snapshot.
struct Section {
  std::uint32_t tag = 0;
  std::uint32_t version = 0;
  std::string_view payload;  // views into the owning Snapshot's buffer
};

/// A fully-validated snapshot image. Parsing verifies magic, format
/// version, section framing and every section CRC up front; a Snapshot in
/// hand is structurally sound (field-level validation is the reader's
/// job). Sections keep file order; repeated tags are allowed.
class Snapshot {
 public:
  /// Parse an in-memory image. nullopt + *error on any malformation.
  static std::optional<Snapshot> parse(std::string data,
                                       std::string* error = nullptr);

  /// Read + parse a file. Consults one fault::Site::kRestoreRead event if
  /// an injector is given (kFail rejects before the file is opened).
  static std::optional<Snapshot> read_file(const std::string& path,
                                           std::string* error = nullptr,
                                           fault::Injector* injector = nullptr,
                                           int target = 0);

  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }
  /// First section with `tag`, nullptr if absent.
  [[nodiscard]] const Section* find(std::uint32_t tag) const;
  /// All sections with `tag`, in file order.
  [[nodiscard]] std::vector<const Section*> find_all(std::uint32_t tag) const;

  Snapshot(Snapshot&&) = default;
  Snapshot& operator=(Snapshot&&) = default;
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

 private:
  Snapshot() = default;
  // unique_ptr keeps payload string_views stable across moves.
  std::unique_ptr<std::string> data_;
  std::vector<Section> sections_;
};

/// Bounded cursor over one section's payload. Reads past the end (or a
/// corrupt length prefix) latch a failure instead of aborting; callers
/// stream their reads and check ok() once at the end. After a failure all
/// further reads return zero values.
class SectionReader {
 public:
  explicit SectionReader(const Section& section)
      : data_(section.payload), tag_(section.tag) {}

  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::string error() const { return error_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Latch an application-level validation failure (same channel as
  /// framing failures, so callers still only check ok() once).
  void fail(const std::string& why);

 private:
  bool take(std::size_t n, const char** out);

  std::string_view data_;
  std::uint32_t tag_ = 0;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace hprng::state
