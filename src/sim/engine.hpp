#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/timeline.hpp"

namespace hprng::sim {

/// Identifier of a submitted operation; also usable as a dependency handle.
using OpId = std::size_t;
inline constexpr OpId kNoOp = std::numeric_limits<OpId>::max();

/// Discrete-event executor over the four platform resources.
///
/// Operations are submitted with an explicit dependency list (ops submitted
/// earlier), a resource, and a duration in simulated seconds. run_all()
/// computes the schedule — FIFO per resource, respecting dependencies — and
/// executes each op's functional closure in submission order (submission
/// order is required to be a topological order, which the submit()
/// precondition enforces). The resulting Timeline carries the virtual-time
/// schedule; `makespan()` is the simulated completion time.
///
/// This is the substitution for real CUDA streams + PCIe DMA + SM dispatch:
/// the *algebra of overlap* (what the paper's Figures 4/5 measure) is
/// reproduced exactly, while every byte of data still moves for real.
class Engine {
 public:
  /// Submit an operation.
  /// @param deps ops that must complete first; each must be < the returned
  ///        id (submission order is the topological order).
  /// @param fn functional payload; may be empty for pure-delay ops.
  OpId submit(Resource resource, std::string label, double duration_s,
              const std::vector<OpId>& deps, std::function<void()> fn);

  /// Submit an operation whose simulated duration is data dependent: the
  /// payload returns the extra seconds to add to `base_duration_s` (e.g. a
  /// kernel whose per-thread work is only known after it ran).
  OpId submit_dynamic(Resource resource, std::string label,
                      double base_duration_s, const std::vector<OpId>& deps,
                      std::function<double()> fn);

  /// Execute everything submitted since the last run_all(). Returns the
  /// simulated makespan of this batch (max end - min start).
  double run_all();

  /// Measurement fence: advance every resource's free time to now(), so
  /// that work submitted after the fence cannot overlap (in virtual time)
  /// with anything submitted before it. Used at the start of every timed
  /// window — the machine is idle when the stopwatch starts.
  void fence() {
    for (double& r : resource_free_) r = now_;
  }

  /// Simulated end time of an op (valid after run_all()).
  [[nodiscard]] double end_time(OpId id) const;
  [[nodiscard]] double start_time(OpId id) const;

  /// Virtual clock: completion time of everything executed so far.
  [[nodiscard]] double now() const { return now_; }

  /// The virtual-time schedule recorded so far (one entry per executed op).
  [[nodiscard]] const Timeline& timeline() const { return timeline_; }

  /// Drop recorded timeline entries (op bookkeeping is unaffected); used by
  /// the figure harnesses to restrict rendering to a steady-state window.
  void clear_timeline() { timeline_.clear(); }

  /// Total number of ops ever submitted (next OpId).
  [[nodiscard]] OpId next_id() const { return ops_.size(); }

  /// Attach (or with nullptr, detach) a metrics registry. The engine then
  /// maintains the `hprng.sim.*` scheduler instruments — submitted/executed
  /// op counts, queue depth, per-resource busy seconds and dependency-stall
  /// counters (docs/OBSERVABILITY.md lists them all). Instruments are
  /// resolved once here, so the per-op hook cost is a null check and a few
  /// relaxed atomic adds; with no registry attached the hooks are dead
  /// branches.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Op {
    Resource resource;
    std::string label;
    double duration;
    std::vector<OpId> deps;
    std::function<double()> fn;  // returns extra duration (0 for static ops)
    double start = 0.0;
    double end = 0.0;
    bool executed = false;
  };

  /// Scheduler instruments, resolved once in set_metrics().
  struct Instruments {
    obs::Counter* ops_submitted = nullptr;
    obs::Counter* ops_executed = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* busy_seconds[kNumResources] = {};
    obs::Counter* dep_stalls[kNumResources] = {};
    obs::Counter* dep_stall_seconds[kNumResources] = {};
  };

  std::vector<Op> ops_;
  std::size_t first_pending_ = 0;
  double resource_free_[kNumResources] = {0, 0, 0, 0};
  double now_ = 0.0;
  Timeline timeline_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments ins_;
};

}  // namespace hprng::sim
