#include "sim/device.hpp"

#include <algorithm>
#include <vector>

namespace hprng::sim {

Device::Device(DeviceSpec spec, util::ThreadPool* pool)
    : spec_(std::move(spec)), pool_(pool) {}

void Device::set_metrics(obs::MetricsRegistry* registry) {
  engine_.set_metrics(registry);
  metrics_ = registry;
  ins_ = {};
  if (registry == nullptr) return;
  ins_.copy_bytes_h2d = &registry->counter("hprng.sim.copy_bytes_h2d");
  ins_.copy_bytes_d2h = &registry->counter("hprng.sim.copy_bytes_d2h");
  ins_.kernel_launches = &registry->counter("hprng.sim.kernel_launches");
  ins_.kernel_threads = &registry->counter("hprng.sim.kernel_threads");
  ins_.host_tasks = &registry->counter("hprng.sim.host_tasks");
}

double Device::copy_seconds(std::size_t bytes) const {
  return spec_.pcie_latency_us * 1e-6 +
         static_cast<double>(bytes) / (spec_.pcie_bandwidth_gb_s * 1e9);
}

double Device::kernel_seconds(std::uint64_t threads,
                              const KernelCost& cost) const {
  const double clock = spec_.core_clock_hz();
  const double cores = spec_.total_cores();
  // Throughput-bound: all cores busy, total ops / aggregate issue rate.
  const double throughput =
      cost.ops_per_thread * spec_.cycles_per_op *
      static_cast<double>(threads) / (cores * clock);
  // Latency floor: one thread's dependent-op chain cannot finish faster
  // than its pipeline depth allows. With enough resident threads this is
  // hidden and the throughput term dominates instead.
  const double latency =
      cost.ops_per_thread * spec_.latency_cycles_per_op / clock;
  const double mem = cost.bytes_per_thread * static_cast<double>(threads) /
                     (spec_.gmem_bandwidth_gb_s * 1e9);
  return spec_.kernel_launch_overhead_us * 1e-6 +
         std::max(throughput, std::max(latency, mem));
}

OpId Device::launch(Stream& stream, std::string label, std::uint64_t threads,
                    const KernelCost& cost,
                    std::function<void(std::uint64_t)> body,
                    const std::vector<OpId>& extra_deps) {
  if (metrics_ != nullptr) {
    ins_.kernel_launches->add(1);
    ins_.kernel_threads->add(static_cast<double>(threads));
  }
  auto deps = with_stream_dep(stream, extra_deps);
  const double duration = kernel_seconds(threads, cost);
  util::ThreadPool* pool = pool_;
  const OpId id = engine_.submit(
      Resource::kDevice, std::move(label), duration, deps,
      [pool, threads, body = std::move(body)] {
        if (pool != nullptr && pool->num_workers() > 0) {
          pool->parallel_for(0, threads, body);
        } else {
          for (std::uint64_t t = 0; t < threads; ++t) body(t);
        }
      });
  stream.set_last(id);
  return id;
}

OpId Device::launch_batched(Stream& stream, std::string label,
                            std::uint64_t threads, const KernelCost& cost,
                            std::uint64_t group,
                            std::function<void(std::uint64_t, std::uint64_t)> body,
                            const std::vector<OpId>& extra_deps) {
  HPRNG_CHECK(group > 0, "launch_batched: group width must be positive");
  if (metrics_ != nullptr) {
    ins_.kernel_launches->add(1);
    ins_.kernel_threads->add(static_cast<double>(threads));
  }
  auto deps = with_stream_dep(stream, extra_deps);
  const double duration = kernel_seconds(threads, cost);
  util::ThreadPool* pool = pool_;
  const OpId id = engine_.submit(
      Resource::kDevice, std::move(label), duration, deps,
      [pool, threads, group, body = std::move(body)] {
        const std::uint64_t groups = (threads + group - 1) / group;
        const auto run_group = [&](std::uint64_t g) {
          const std::uint64_t lo = g * group;
          body(lo, std::min(threads, lo + group));
        };
        if (pool != nullptr && pool->num_workers() > 0) {
          pool->parallel_for(0, groups, run_group);
        } else {
          for (std::uint64_t g = 0; g < groups; ++g) run_group(g);
        }
      });
  stream.set_last(id);
  return id;
}

OpId Device::launch_dynamic(Stream& stream, std::string label,
                            std::uint64_t threads,
                            const KernelCost& base_cost,
                            std::function<double(std::uint64_t)> body,
                            const std::vector<OpId>& extra_deps) {
  if (metrics_ != nullptr) {
    ins_.kernel_launches->add(1);
    ins_.kernel_threads->add(static_cast<double>(threads));
  }
  auto deps = with_stream_dep(stream, extra_deps);
  const double base = kernel_seconds(threads, base_cost);
  util::ThreadPool* pool = pool_;
  const DeviceSpec* spec = &spec_;
  const OpId id = engine_.submit_dynamic(
      Resource::kDevice, std::move(label), base, deps,
      [this, pool, spec, threads, body = std::move(body)]() -> double {
        // Per-chunk partial sums, reduced once in chunk order: no lock on
        // the hottest kernel path, and — because the chunk size is fixed
        // rather than derived from the worker count — the floating-point
        // reduction is bit-identical for any pool size (including none),
        // keeping the virtual-time schedule independent of the pool.
        constexpr std::uint64_t kChunk = 2048;
        const std::uint64_t chunks = (threads + kChunk - 1) / kChunk;
        std::vector<double> partial(static_cast<std::size_t>(chunks), 0.0);
        const auto chunk_body = [&](std::uint64_t c) {
          const std::uint64_t lo = c * kChunk;
          const std::uint64_t hi = std::min(threads, lo + kChunk);
          double ops = 0.0;
          for (std::uint64_t t = lo; t < hi; ++t) ops += body(t);
          partial[static_cast<std::size_t>(c)] = ops;
        };
        if (pool != nullptr && pool->num_workers() > 0) {
          pool->parallel_for(0, chunks, chunk_body);
        } else {
          for (std::uint64_t c = 0; c < chunks; ++c) chunk_body(c);
        }
        double total_ops = 0.0;
        for (const double p : partial) total_ops += p;
        // Convert realised ops into seconds through the same cost model,
        // without double charging the launch overhead (already in `base`).
        const double extra = kernel_seconds(
            threads, KernelCost{total_ops / static_cast<double>(threads),
                                0.0});
        return extra - spec->kernel_launch_overhead_us * 1e-6;
      });
  stream.set_last(id);
  return id;
}

OpId Device::host_task(Stream& stream, std::string label, double seconds,
                       std::function<void()> fn,
                       const std::vector<OpId>& extra_deps) {
  if (metrics_ != nullptr) ins_.host_tasks->add(1);
  auto deps = with_stream_dep(stream, extra_deps);
  const OpId id = engine_.submit(Resource::kHost, std::move(label), seconds,
                                 deps, std::move(fn));
  stream.set_last(id);
  return id;
}

std::vector<OpId> Device::with_stream_dep(
    Stream& stream, const std::vector<OpId>& extra) const {
  std::vector<OpId> deps = extra;
  if (stream.last() != kNoOp) deps.push_back(stream.last());
  for (OpId w : stream.take_pending_waits()) deps.push_back(w);
  return deps;
}

}  // namespace hprng::sim
