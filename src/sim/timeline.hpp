#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hprng::sim {

/// Virtual-time resources of the simulated platform.
enum class Resource : std::uint8_t {
  kHost = 0,     // multicore CPU
  kPcieH2D = 1,  // host -> device DMA
  kPcieD2H = 2,  // device -> host DMA
  kDevice = 3,   // GPU compute
};

/// Human-readable resource name ("CPU", "PCIe H2D", ...) for table output.
const char* to_string(Resource r);

/// Metric-name suffix of a resource ("host", "pcie_h2d", "pcie_d2h",
/// "device"), per the hprng.<subsystem>.<name> contract of
/// docs/OBSERVABILITY.md.
const char* metric_suffix(Resource r);

inline constexpr int kNumResources = 4;

/// One scheduled interval on a resource, in simulated seconds.
struct TimelineEntry {
  Resource resource;
  std::string label;
  double start = 0.0;
  double end = 0.0;
};

/// The complete virtual-time schedule of a run; rendered for Figure 4 and
/// mined for idle-fraction statistics.
///
/// busy_time/idle_fraction/render_ascii are the *legacy, human-facing*
/// consumption path (kept for the in-terminal figures and quick checks).
/// For machine consumption — diffing schedules across PRs, loading them in
/// chrome://tracing or Perfetto — export the timeline with
/// obs::TraceWriter instead (docs/OBSERVABILITY.md).
class Timeline {
 public:
  /// Record one interval. The engine appends entries in execution order;
  /// manually built timelines may add entries in any order, including
  /// overlapping ones (busy_time merges overlaps before summing).
  void add(TimelineEntry e) { entries_.push_back(std::move(e)); }

  /// Drop all recorded entries.
  void clear() { entries_.clear(); }

  /// All recorded intervals, in the order they were added.
  [[nodiscard]] const std::vector<TimelineEntry>& entries() const {
    return entries_;
  }

  /// Busy time of a resource within [t0, t1]. Entries are clipped to the
  /// window, overlapping entries on the same resource are merged (never
  /// double-counted), and a degenerate window (t1 <= t0) is 0.
  [[nodiscard]] double busy_time(Resource r, double t0, double t1) const;

  /// 1 - busy/(t1-t0): the idle fraction the paper quotes ("the CPU is
  /// almost never idle, the GPU is idle for about 20%"). Always in [0, 1];
  /// a degenerate window (t1 <= t0) reports 0 rather than dividing by zero.
  [[nodiscard]] double idle_fraction(Resource r, double t0, double t1) const;

  /// ASCII Gantt chart of [t0, t1], one row per resource, `width` columns.
  [[nodiscard]] std::string render_ascii(double t0, double t1,
                                         int width = 96) const;

 private:
  std::vector<TimelineEntry> entries_;
};

}  // namespace hprng::sim
