#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hprng::sim {

/// Virtual-time resources of the simulated platform.
enum class Resource : std::uint8_t {
  kHost = 0,     // multicore CPU
  kPcieH2D = 1,  // host -> device DMA
  kPcieD2H = 2,  // device -> host DMA
  kDevice = 3,   // GPU compute
};

const char* to_string(Resource r);
inline constexpr int kNumResources = 4;

/// One scheduled interval on a resource, in simulated seconds.
struct TimelineEntry {
  Resource resource;
  std::string label;
  double start = 0.0;
  double end = 0.0;
};

/// The complete virtual-time schedule of a run; rendered for Figure 4 and
/// mined for idle-fraction statistics.
class Timeline {
 public:
  void add(TimelineEntry e) { entries_.push_back(std::move(e)); }
  void clear() { entries_.clear(); }

  [[nodiscard]] const std::vector<TimelineEntry>& entries() const {
    return entries_;
  }

  /// Busy time of a resource within [t0, t1].
  [[nodiscard]] double busy_time(Resource r, double t0, double t1) const;

  /// 1 - busy/(t1-t0): the idle fraction the paper quotes ("the CPU is
  /// almost never idle, the GPU is idle for about 20%").
  [[nodiscard]] double idle_fraction(Resource r, double t0, double t1) const;

  /// ASCII Gantt chart of [t0, t1], one row per resource, `width` columns.
  [[nodiscard]] std::string render_ascii(double t0, double t1,
                                         int width = 96) const;

 private:
  std::vector<TimelineEntry> entries_;
};

}  // namespace hprng::sim
