#pragma once

#include <string>

namespace hprng::sim {

/// Hardware model parameters of the simulated platform. The default is the
/// paper's testbed: an NVIDIA Tesla C1060 (30 SMs x 8 SPs @ 1.296 GHz,
/// 102 GB/s GDDR3) attached over PCI Express 2.0 x16 (8 GB/s) to an
/// Intel i7 host at 3.4 GHz.
///
/// All simulated durations derive from these numbers plus per-kernel
/// KernelCost descriptions; nothing in the figures is a hand-tuned constant.
struct DeviceSpec {
  std::string name = "tesla-c1060";

  // Device compute.
  int num_sms = 30;
  int cores_per_sm = 8;
  int warp_size = 32;
  double core_clock_ghz = 1.296;
  /// Average issue cost of one simple ALU op in cycles (4-stage SP pipeline
  /// with no dual issue in this generation).
  double cycles_per_op = 1.0;
  /// Pipeline/occupancy latency floor multiplier when a kernel has too few
  /// threads to cover latency.
  double latency_cycles_per_op = 4.0;

  // Device memory.
  /// Peak global-memory bandwidth; bounds memory-bound kernel cost.
  double gmem_bandwidth_gb_s = 102.0;

  // Interconnect (PCIe 2.0 x16).
  /// Sustained host<->device copy bandwidth; TRANSFER cost is
  /// bytes / bandwidth + latency.
  double pcie_bandwidth_gb_s = 8.0;
  /// Fixed per-copy setup latency (DMA + driver).
  double pcie_latency_us = 10.0;

  // Launch and host.
  /// Fixed device-side cost charged per kernel launch.
  double kernel_launch_overhead_us = 5.0;
  /// Host-side CUDA API cost per pipeline round (stream enqueue + async
  /// copy + kernel launch calls); paid by the CPU each feed round.
  double host_api_call_overhead_us = 2.0;
  double host_clock_ghz = 3.4;
  /// Host cost of producing one random bit with the glibc LCG feeder
  /// (amortised across the i7's cores driving the feed loop; a 31-bit LCG
  /// step is ~2 ns serial, i.e. ~0.17 ns/bit with stores).
  double host_ns_per_random_bit = 0.17;

  [[nodiscard]] double core_clock_hz() const { return core_clock_ghz * 1e9; }
  [[nodiscard]] int total_cores() const { return num_sms * cores_per_sm; }

  /// The paper's platform (Sec. II).
  static DeviceSpec tesla_c1060() { return DeviceSpec{}; }

  /// A Fermi-generation Tesla C2050: 14 SMs x 32 cores @ 1.15 GHz,
  /// 144 GB/s GDDR5, same PCIe 2.0 host link. Used by the cross-device
  /// scaling tests: the hybrid pipeline stays CPU-feed-bound, so a faster
  /// device mostly widens the GPU idle gap rather than the throughput.
  static DeviceSpec tesla_c2050() {
    DeviceSpec spec;
    spec.name = "tesla-c2050";
    spec.num_sms = 14;
    spec.cores_per_sm = 32;
    spec.core_clock_ghz = 1.15;
    spec.gmem_bandwidth_gb_s = 144.0;
    return spec;
  }

  /// A deliberately slow teaching configuration (single SM) for tests that
  /// need the compute-bound regime.
  static DeviceSpec single_sm() {
    DeviceSpec spec;
    spec.name = "single-sm";
    spec.num_sms = 1;
    return spec;
  }
};

}  // namespace hprng::sim
