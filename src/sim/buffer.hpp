#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hprng::sim {

/// Simulated device-global memory. Host code must move data through the
/// Device copy operations (charged PCIe time); kernels receive spans via
/// Buffer::device_span() at launch time. The storage is ordinary host
/// memory — the simulation is about *time*, the data is real.
template <typename T>
class Buffer {
 public:
  Buffer() = default;
  /// Allocate `n` value-initialised elements of device memory. Allocation
  /// itself is free in simulated time (as cudaMalloc is outside the timed
  /// regions of the paper's experiments).
  explicit Buffer(std::size_t n) : data_(n) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const {
    return data_.size() * sizeof(T);
  }
  /// Reallocation preserves contents, like a host-managed realloc; callers
  /// in the pipeline only ever grow buffers outside timed windows.
  void resize(std::size_t n) { data_.resize(n); }

  /// Device-side view, for kernel bodies and Device::memcpy_* only.
  [[nodiscard]] std::span<T> device_span() { return {data_}; }
  [[nodiscard]] std::span<const T> device_span() const { return {data_}; }

 private:
  std::vector<T> data_;
};

}  // namespace hprng::sim
