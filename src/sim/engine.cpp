#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hprng::sim {

void Engine::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  ins_ = {};
  if (registry == nullptr) return;
  // Eager registration: the full hprng.sim scheduler schema exists in the
  // registry from attach time (snapshots are diffable even when a counter
  // never fires), and the hot-path hooks are plain pointer adds.
  ins_.ops_submitted = &registry->counter("hprng.sim.ops_submitted");
  ins_.ops_executed = &registry->counter("hprng.sim.ops_executed");
  ins_.queue_depth = &registry->gauge("hprng.sim.queue_depth");
  for (int r = 0; r < kNumResources; ++r) {
    const std::string suffix = metric_suffix(static_cast<Resource>(r));
    ins_.busy_seconds[r] =
        &registry->counter("hprng.sim.busy_seconds." + suffix);
    ins_.dep_stalls[r] = &registry->counter("hprng.sim.dep_stalls." + suffix);
    ins_.dep_stall_seconds[r] =
        &registry->counter("hprng.sim.dep_stall_seconds." + suffix);
  }
}

OpId Engine::submit(Resource resource, std::string label, double duration_s,
                    const std::vector<OpId>& deps, std::function<void()> fn) {
  std::function<double()> wrapped;
  if (fn) {
    wrapped = [fn = std::move(fn)]() -> double {
      fn();
      return 0.0;
    };
  }
  return submit_dynamic(resource, std::move(label), duration_s, deps,
                        std::move(wrapped));
}

OpId Engine::submit_dynamic(Resource resource, std::string label,
                            double base_duration_s,
                            const std::vector<OpId>& deps,
                            std::function<double()> fn) {
  HPRNG_CHECK(base_duration_s >= 0.0, "op duration must be non-negative");
  const OpId id = ops_.size();
  for (OpId d : deps) {
    HPRNG_CHECK(d < id, "dependencies must reference earlier ops");
  }
  ops_.push_back(Op{resource, std::move(label), base_duration_s, deps,
                    std::move(fn)});
  if (metrics_ != nullptr) ins_.ops_submitted->add(1);
  return id;
}

double Engine::run_all() {
  double batch_min = std::numeric_limits<double>::max();
  double batch_max = now_;
  if (metrics_ != nullptr) {
    ins_.queue_depth->set(static_cast<double>(ops_.size() - first_pending_));
  }
  for (std::size_t i = first_pending_; i < ops_.size(); ++i) {
    Op& op = ops_[i];
    // Note: deliberately NOT clamped to now_ — an op submitted after a
    // synchronize() may still start (in virtual time) while earlier-batch
    // ops on other resources are running, which is what keeps the
    // FEED/TRANSFER/GENERATE pipeline overlapped across run_all() calls.
    double ready = 0.0;
    for (OpId d : op.deps) {
      ready = std::max(ready, ops_[d].end);
    }
    const auto r = static_cast<std::size_t>(op.resource);
    const double free_at = resource_free_[r];
    op.start = std::max(ready, free_at);
    double extra = 0.0;
    if (op.fn) extra = op.fn();
    HPRNG_CHECK(extra >= 0.0, "dynamic op duration must be non-negative");
    op.end = op.start + op.duration + extra;
    resource_free_[r] = op.end;
    op.executed = true;
    timeline_.add({op.resource, op.label, op.start, op.end});
    // Release the functional payload and dependency list: only the recorded
    // times are read after execution (end_time/start_time), and holding the
    // closures would pin every captured resource — notably the serve path's
    // shared scratch records, whose reuse pool relies on the engine dropping
    // its references here — for the engine's whole lifetime.
    op.fn = nullptr;
    op.deps.clear();
    op.deps.shrink_to_fit();
    if (metrics_ != nullptr) {
      ins_.ops_executed->add(1);
      ins_.busy_seconds[r]->add(op.end - op.start);
      // The resource sat idle from free_at to ready waiting for a
      // dependency on another resource: a pipeline stall.
      if (ready > free_at) {
        ins_.dep_stalls[r]->add(1);
        ins_.dep_stall_seconds[r]->add(ready - free_at);
      }
    }
    batch_min = std::min(batch_min, op.start);
    batch_max = std::max(batch_max, op.end);
  }
  if (first_pending_ == ops_.size()) return 0.0;
  first_pending_ = ops_.size();
  now_ = batch_max;
  // The batch drained: the gauge reads 0 between run_all() calls.
  if (metrics_ != nullptr) ins_.queue_depth->set(0.0);
  return batch_max - batch_min;
}

double Engine::end_time(OpId id) const {
  HPRNG_CHECK(id < ops_.size() && ops_[id].executed,
              "end_time: op not yet executed");
  return ops_[id].end;
}

double Engine::start_time(OpId id) const {
  HPRNG_CHECK(id < ops_.size() && ops_[id].executed,
              "start_time: op not yet executed");
  return ops_[id].start;
}

}  // namespace hprng::sim
