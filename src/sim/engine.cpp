#include "sim/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hprng::sim {

OpId Engine::submit(Resource resource, std::string label, double duration_s,
                    const std::vector<OpId>& deps, std::function<void()> fn) {
  std::function<double()> wrapped;
  if (fn) {
    wrapped = [fn = std::move(fn)]() -> double {
      fn();
      return 0.0;
    };
  }
  return submit_dynamic(resource, std::move(label), duration_s, deps,
                        std::move(wrapped));
}

OpId Engine::submit_dynamic(Resource resource, std::string label,
                            double base_duration_s,
                            const std::vector<OpId>& deps,
                            std::function<double()> fn) {
  HPRNG_CHECK(base_duration_s >= 0.0, "op duration must be non-negative");
  const OpId id = ops_.size();
  for (OpId d : deps) {
    HPRNG_CHECK(d < id, "dependencies must reference earlier ops");
  }
  ops_.push_back(Op{resource, std::move(label), base_duration_s, deps,
                    std::move(fn)});
  return id;
}

double Engine::run_all() {
  double batch_min = std::numeric_limits<double>::max();
  double batch_max = now_;
  for (std::size_t i = first_pending_; i < ops_.size(); ++i) {
    Op& op = ops_[i];
    // Note: deliberately NOT clamped to now_ — an op submitted after a
    // synchronize() may still start (in virtual time) while earlier-batch
    // ops on other resources are running, which is what keeps the
    // FEED/TRANSFER/GENERATE pipeline overlapped across run_all() calls.
    double ready = 0.0;
    for (OpId d : op.deps) {
      ready = std::max(ready, ops_[d].end);
    }
    const auto r = static_cast<std::size_t>(op.resource);
    op.start = std::max(ready, resource_free_[r]);
    double extra = 0.0;
    if (op.fn) extra = op.fn();
    HPRNG_CHECK(extra >= 0.0, "dynamic op duration must be non-negative");
    op.end = op.start + op.duration + extra;
    resource_free_[r] = op.end;
    op.executed = true;
    timeline_.add({op.resource, op.label, op.start, op.end});
    batch_min = std::min(batch_min, op.start);
    batch_max = std::max(batch_max, op.end);
  }
  if (first_pending_ == ops_.size()) return 0.0;
  first_pending_ = ops_.size();
  now_ = batch_max;
  return batch_max - batch_min;
}

double Engine::end_time(OpId id) const {
  HPRNG_CHECK(id < ops_.size() && ops_[id].executed,
              "end_time: op not yet executed");
  return ops_[id].end;
}

double Engine::start_time(OpId id) const {
  HPRNG_CHECK(id < ops_.size() && ops_[id].executed,
              "start_time: op not yet executed");
  return ops_[id].start;
}

}  // namespace hprng::sim
