#include "sim/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "util/table.hpp"

namespace hprng::sim {

const char* to_string(Resource r) {
  switch (r) {
    case Resource::kHost: return "CPU";
    case Resource::kPcieH2D: return "PCIe H2D";
    case Resource::kPcieD2H: return "PCIe D2H";
    case Resource::kDevice: return "GPU";
  }
  return "?";
}

const char* metric_suffix(Resource r) {
  switch (r) {
    case Resource::kHost: return "host";
    case Resource::kPcieH2D: return "pcie_h2d";
    case Resource::kPcieD2H: return "pcie_d2h";
    case Resource::kDevice: return "device";
  }
  return "unknown";
}

double Timeline::busy_time(Resource r, double t0, double t1) const {
  if (t1 <= t0) return 0.0;
  // Clip every entry to the window, then merge overlapping intervals so a
  // manually built timeline with overlapping entries on one resource is
  // not double-counted. (Engine-recorded entries never overlap — it
  // serialises each resource — and touching intervals are deliberately NOT
  // merged, so for engine timelines the sum is bit-for-bit the sum of the
  // window ops' durations, which the hprng.sim.busy_seconds.* counters
  // also accumulate.)
  std::vector<std::pair<double, double>> clipped;
  for (const auto& e : entries_) {
    if (e.resource != r) continue;
    const double s = std::max(e.start, t0);
    const double t = std::min(e.end, t1);
    if (t > s) clipped.emplace_back(s, t);
  }
  std::sort(clipped.begin(), clipped.end());
  double busy = 0.0;
  double cur_start = 0.0;
  double cur_end = 0.0;
  bool open = false;
  for (const auto& [s, t] : clipped) {
    if (open && s < cur_end) {
      cur_end = std::max(cur_end, t);
      continue;
    }
    if (open) busy += cur_end - cur_start;
    cur_start = s;
    cur_end = t;
    open = true;
  }
  if (open) busy += cur_end - cur_start;
  return busy;
}

double Timeline::idle_fraction(Resource r, double t0, double t1) const {
  const double span = t1 - t0;
  // A degenerate window has no idle time to report (and no span to divide
  // by); callers probing an empty window get "fully busy" = 0, never NaN.
  if (span <= 0.0) return 0.0;
  return std::clamp(1.0 - busy_time(r, t0, t1) / span, 0.0, 1.0);
}

std::string Timeline::render_ascii(double t0, double t1, int width) const {
  const double span = t1 - t0;
  std::string out;
  if (span <= 0.0 || width <= 0) return out;
  for (int ri = 0; ri < kNumResources; ++ri) {
    const auto r = static_cast<Resource>(ri);
    std::string row(static_cast<std::size_t>(width), '.');
    for (const auto& e : entries_) {
      if (e.resource != r) continue;
      const double clip_s = std::max(e.start, t0);
      const double clip_e = std::min(e.end, t1);
      if (clip_e <= clip_s) continue;
      auto col = [&](double t) {
        return std::clamp(
            static_cast<int>((t - t0) / span * width), 0, width - 1);
      };
      const char mark = e.label.empty() ? '#' : e.label[0];
      for (int cix = col(clip_s); cix <= col(clip_e - 1e-15); ++cix) {
        row[static_cast<std::size_t>(cix)] = mark;
      }
    }
    out += util::strf("%-9s |", to_string(r));
    out += row;
    out += util::strf("| busy %5.1f%%\n",
                      100.0 * (1.0 - idle_fraction(r, t0, t1)));
  }
  out += util::strf("window: %.3f us .. %.3f us (marks = first letter of "
                    "work unit)\n",
                    t0 * 1e6, t1 * 1e6);
  return out;
}

}  // namespace hprng::sim
