#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "sim/buffer.hpp"
#include "sim/engine.hpp"
#include "sim/spec.hpp"
#include "util/thread_pool.hpp"

namespace hprng::sim {

/// Per-thread work description used by the kernel cost model.
struct KernelCost {
  /// Simple ALU/control ops each thread executes.
  double ops_per_thread = 1.0;
  /// Global-memory bytes each thread moves.
  double bytes_per_thread = 0.0;
};

/// A recorded point in a stream's execution, CUDA-event style: other
/// streams can wait on it, and its completion time can be queried after a
/// synchronize.
struct Event {
  OpId marker = kNoOp;
  [[nodiscard]] bool valid() const { return marker != kNoOp; }
};

/// An in-order queue of device operations, CUDA-stream style: each op chains
/// on the stream's previous op plus any explicit extra dependencies, which
/// is how copy/compute overlap across streams is expressed.
class Stream {
 public:
  [[nodiscard]] OpId last() const { return last_; }
  void set_last(OpId id) { last_ = id; }

  /// Record the stream's current tail as an event (cudaEventRecord).
  [[nodiscard]] Event record_event() const { return Event{last_}; }

  /// Make this stream's NEXT operation wait for `e` (cudaStreamWaitEvent).
  void wait_event(Event e) {
    if (e.valid()) pending_waits_.push_back(e.marker);
  }

  /// Consume the accumulated wait list (used by Device when enqueuing).
  std::vector<OpId> take_pending_waits() {
    return std::exchange(pending_waits_, {});
  }

 private:
  OpId last_ = kNoOp;
  std::vector<OpId> pending_waits_;
};

/// The simulated GPU + PCIe + host platform. All simulated durations come
/// from `spec`; all functional effects run immediately (in dependency
/// order) on the calling thread or the optional worker pool.
class Device {
 public:
  /// @param spec cost-model parameters of the simulated platform.
  /// @param pool optional worker pool kernels' functional bodies run on;
  ///        nullptr executes them on the calling thread.
  explicit Device(DeviceSpec spec = DeviceSpec::tesla_c1060(),
                  util::ThreadPool* pool = nullptr);

  /// The cost-model parameters this platform was built with.
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// The underlying discrete-event executor (fences, op timestamps).
  [[nodiscard]] Engine& engine() { return engine_; }

  /// The worker pool kernel bodies run on (nullptr = inline execution).
  /// Exposed so pipeline stages that do their own host-side work (the
  /// serve counter feed, BitFeeder refills) can share the device's pool.
  [[nodiscard]] util::ThreadPool* pool() const { return pool_; }

  /// The engine's recorded virtual-time schedule.
  [[nodiscard]] const Timeline& timeline() const {
    return engine_.timeline();
  }

  /// Attach (or with nullptr, detach) a metrics registry to this platform:
  /// forwards to Engine::set_metrics for the scheduler instruments and
  /// additionally maintains the device-level `hprng.sim.*` counters (copy
  /// bytes per direction, kernel launches and threads, host tasks).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attach (or with nullptr, detach) a fault injector (docs/FAULTS.md):
  /// every transfer enqueue then consults `injector` at Site::kH2D/kD2H
  /// with `target` (the owner's id — the serve layer passes its shard
  /// index). An injected delay lengthens the transfer's simulated
  /// duration; an injected failure charges full PCIe time but skips the
  /// data movement — the simulated equivalent of a dropped DMA — and is
  /// reported through take_transfer_faults().
  void set_fault_injector(fault::Injector* injector, int target = 0) {
    fault_injector_ = injector;
    fault_target_ = target;
  }

  /// Failed transfers executed since the last call (consume-on-read).
  /// Pipelines poll this after synchronize() to turn dropped copies into
  /// an explicit fill failure instead of silent stream corruption.
  std::uint64_t take_transfer_faults() {
    return transfer_faults_.exchange(0, std::memory_order_acq_rel);
  }

  /// Simulated duration of one H2D/D2H transfer of `bytes`.
  [[nodiscard]] double copy_seconds(std::size_t bytes) const;

  /// Simulated duration of a kernel with `threads` threads of cost `cost`:
  /// launch overhead + max(throughput-bound compute, latency floor) +
  /// global-memory time.
  [[nodiscard]] double kernel_seconds(std::uint64_t threads,
                                      const KernelCost& cost) const;

  /// Enqueue an async host->device copy on `stream`.
  template <typename T>
  OpId memcpy_h2d(Stream& stream, std::span<const T> src, Buffer<T>& dst,
                  const std::vector<OpId>& extra_deps = {}) {
    HPRNG_CHECK(src.size() <= dst.size(), "memcpy_h2d overflows buffer");
    if (metrics_ != nullptr) {
      ins_.copy_bytes_h2d->add(static_cast<double>(src.size_bytes()));
    }
    auto deps = with_stream_dep(stream, extra_deps);
    double duration = copy_seconds(src.size_bytes());
    const bool drop = consult_fault(fault::Site::kH2D, &duration);
    const OpId id = engine_.submit(
        Resource::kPcieH2D, "Transfer", duration, deps,
        [this, drop, src, out = dst.device_span()]() mutable {
          if (drop) {
            transfer_faults_.fetch_add(1, std::memory_order_acq_rel);
            return;
          }
          std::copy(src.begin(), src.end(), out.begin());
        });
    stream.set_last(id);
    return id;
  }

  /// Enqueue an async device->host copy on `stream`.
  template <typename T>
  OpId memcpy_d2h(Stream& stream, const Buffer<T>& src, std::span<T> dst,
                  const std::vector<OpId>& extra_deps = {}) {
    HPRNG_CHECK(dst.size() >= src.size(), "memcpy_d2h overflows span");
    if (metrics_ != nullptr) {
      ins_.copy_bytes_d2h->add(static_cast<double>(src.size_bytes()));
    }
    auto deps = with_stream_dep(stream, extra_deps);
    double duration = copy_seconds(src.size_bytes());
    const bool drop = consult_fault(fault::Site::kD2H, &duration);
    const OpId id = engine_.submit(
        Resource::kPcieD2H, "transfer-d2h", duration, deps,
        [this, drop, in = src.device_span(), dst]() mutable {
          if (drop) {
            transfer_faults_.fetch_add(1, std::memory_order_acq_rel);
            return;
          }
          std::copy(in.begin(), in.end(), dst.begin());
        });
    stream.set_last(id);
    return id;
  }

  /// Enqueue a kernel of `threads` linear threads; `body(tid)` runs for
  /// every thread (functionally, on the worker pool if one was given).
  OpId launch(Stream& stream, std::string label, std::uint64_t threads,
              const KernelCost& cost,
              std::function<void(std::uint64_t)> body,
              const std::vector<OpId>& extra_deps = {});

  /// Like launch(), but the functional body receives contiguous tid ranges:
  /// `body(lo, hi)` covers tids [lo, hi) with hi - lo <= `group`. The
  /// group grid is a pure function of (threads, group) — never of the
  /// worker pool — so a lane-batched body that is bit-exact per tid
  /// produces the identical stream for any pool size. Simulated cost,
  /// label and thread accounting are exactly launch()'s: batching is a
  /// host-side execution detail, invisible to the virtual-time schedule.
  OpId launch_batched(Stream& stream, std::string label,
                      std::uint64_t threads, const KernelCost& cost,
                      std::uint64_t group,
                      std::function<void(std::uint64_t, std::uint64_t)> body,
                      const std::vector<OpId>& extra_deps = {});

  /// Like launch(), for kernels whose work is data dependent: `body(tid)`
  /// returns the simple-op count that thread actually executed, and the
  /// kernel's simulated duration is computed from the realised totals
  /// (plus `base_cost` charged statically per thread).
  OpId launch_dynamic(Stream& stream, std::string label,
                      std::uint64_t threads, const KernelCost& base_cost,
                      std::function<double(std::uint64_t)> body,
                      const std::vector<OpId>& extra_deps = {});

  /// Enqueue host work (simulated `seconds` on the CPU resource).
  OpId host_task(Stream& stream, std::string label, double seconds,
                 std::function<void()> fn,
                 const std::vector<OpId>& extra_deps = {});

  /// Run all queued ops; returns the simulated makespan of the batch.
  double synchronize() { return engine_.run_all(); }

 private:
  std::vector<OpId> with_stream_dep(Stream& stream,
                                    const std::vector<OpId>& extra) const;

  /// Consult the fault injector (if any) at a transfer site. Adds any
  /// injected delay to *duration; returns true when the transfer must
  /// drop its payload. Consulted at enqueue time — enqueues are already
  /// serialised by the device owner's lock, keeping event ordinals
  /// deterministic (docs/FAULTS.md §2).
  bool consult_fault(fault::Site site, double* duration) {
    if (fault_injector_ == nullptr) return false;
    const fault::Outcome o = fault_injector_->on_event(site, fault_target_);
    *duration += o.delay_seconds;
    return o.fail();
  }

  /// Device-level instruments, resolved once in set_metrics().
  struct Instruments {
    obs::Counter* copy_bytes_h2d = nullptr;
    obs::Counter* copy_bytes_d2h = nullptr;
    obs::Counter* kernel_launches = nullptr;
    obs::Counter* kernel_threads = nullptr;
    obs::Counter* host_tasks = nullptr;
  };

  DeviceSpec spec_;
  util::ThreadPool* pool_;
  Engine engine_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Instruments ins_;
  fault::Injector* fault_injector_ = nullptr;
  int fault_target_ = 0;
  std::atomic<std::uint64_t> transfer_faults_{0};
};

}  // namespace hprng::sim
